"""Shortest paths and the all-pairs distance oracle.

The paper's preprocessing is centralized and is dominated by an
all-pairs shortest-path computation (Section 6).  This module provides:

* single-source Dijkstra (:func:`dijkstra`) returning distances and
  shortest-path-tree parents, with the deterministic tie-breaking the
  rest of the library relies on;
* :func:`shortest_path` extraction (cached: repeated queries against
  the same frozen graph reuse one tree per source, and reuse a live
  :class:`DistanceOracle` outright when one exists);
* :class:`DistanceOracle`, a cached all-pairs distance matrix with the
  roundtrip matrix ``r = d + d^T`` alongside (used by every scheme).

The oracle has two interchangeable engines:

* ``engine="vectorized"`` (the default) builds a CSR snapshot
  (:mod:`repro.graph.csr`) and computes all ``n`` sources at once with
  the numpy-batched relaxation in :mod:`repro.graph.apsp`;
* ``engine="python"`` runs the classic ``n`` heap Dijkstras and is
  kept as the differential-testing reference.

Both produce bit-identical distance, roundtrip, and parent matrices
(asserted over every standard graph family in
``tests/test_csr_apsp.py``).  The vectorized engine requires edge
weights well above the tie tolerance; the default transparently falls
back to the python engine on (pathological) graphs where that fails.

Dijkstra tie-breaking: when two paths to ``v`` have equal length, the
one whose predecessor has the smaller vertex id wins.  This makes
shortest-path trees canonical, which matters for the cluster-closure
property of the RTZ substrate (see ``repro.rtz.routing``).
"""

from __future__ import annotations

import heapq
import math
import time
import weakref
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, NotStronglyConnectedError
from repro.graph.apsp import (
    TIE_EPS,
    apsp_matrices,
    vectorized_engine_supported,
)
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Digraph

INF = math.inf


def dijkstra(
    g: Digraph,
    source: int,
    reverse: bool = False,
) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths.

    Args:
        g: the digraph.
        source: source vertex.
        reverse: when ``True``, compute distances *into* ``source``
            (i.e. run on reversed edges); the returned parents then form
            an in-tree: ``parent[v]`` is the successor of ``v`` on a
            shortest ``v -> source`` path.

    Returns:
        ``(dist, parent)`` where ``dist[v]`` is the distance and
        ``parent[v]`` the shortest-path-tree parent (``-1`` for the
        source and for unreachable vertices).
    """
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    # heap entries: (distance, parent_id_tiebreak, vertex)
    heap: List[Tuple[float, int, int]] = [(0.0, -1, source)]
    done = [False] * n
    neighbors = g.in_neighbors if reverse else g.out_neighbors
    while heap:
        d, _tie, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for (v, w) in neighbors(u):
            nd = d + w
            if nd < dist[v] - TIE_EPS or (
                abs(nd - dist[v]) <= TIE_EPS and parent[v] > u and not done[v]
            ):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, u, v))
    return dist, parent


# ----------------------------------------------------------------------
# per-graph caches for repeated shortest_path() queries
# ----------------------------------------------------------------------
# Analysis code calls shortest_path() in per-pair loops; re-running a
# full Dijkstra per call is quadratic waste.  For frozen (immutable)
# graphs we keep one forward tree per queried source, and when a
# DistanceOracle has been built for the graph we use its cached trees
# directly.  Keys are weak so caches die with their graphs.
_TREE_CACHE: "weakref.WeakKeyDictionary[Digraph, Dict[int, Tuple[List[float], List[int]]]]" = (
    weakref.WeakKeyDictionary()
)
_ORACLE_CACHE: "weakref.WeakKeyDictionary[Digraph, weakref.ref]" = (
    weakref.WeakKeyDictionary()
)


def _cached_tree(g: Digraph, source: int) -> Tuple[List[float], List[int]]:
    """The forward Dijkstra tree from ``source``, cached for frozen
    graphs (a frozen graph's topology can no longer change)."""
    if not g.frozen:
        return dijkstra(g, source)
    trees = _TREE_CACHE.setdefault(g, {})
    tree = trees.get(source)
    if tree is None:
        tree = trees[source] = dijkstra(g, source)
    return tree


def shortest_path(g: Digraph, source: int, target: int) -> List[int]:
    """Return a shortest path ``source -> ... -> target`` as vertex ids.

    Queries against a frozen graph are served from cached trees (one
    Dijkstra per distinct source, or zero when a
    :class:`DistanceOracle` for the graph is alive), so per-pair loops
    in analysis code no longer pay a full Dijkstra per call.

    Raises:
        GraphError: if ``target`` is unreachable from ``source``.
    """
    oracle_ref = _ORACLE_CACHE.get(g)
    oracle = oracle_ref() if oracle_ref is not None else None
    if oracle is not None:
        if source == target:
            return [source]
        return oracle.path(source, target)
    dist, parent = _cached_tree(g, source)
    if dist[target] == INF:
        raise GraphError(f"vertex {target} unreachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_length(g: Digraph, path: Sequence[int]) -> float:
    """Return the total weight of a vertex path."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += g.weight(u, v)
    return total


class DistanceOracle:
    """All-pairs distances with the derived roundtrip metric.

    Computes the all-pairs solution once and caches:

    * ``d`` — the ``n x n`` one-way distance matrix (``d[u, v]`` is the
      shortest ``u -> v`` distance),
    * ``r`` — the roundtrip matrix ``r[u, v] = d[u, v] + d[v, u]``
      (Section 1.1: the minimum cost of a directed tour from ``u``
      through ``v`` back to ``u``),
    * forward shortest-path-tree parents from every source, used to
      extract canonical shortest paths without re-running Dijkstra.

    Args:
        g: the digraph (must be strongly connected).
        engine: ``"vectorized"`` computes all sources at once over a
            CSR snapshot with numpy-batched relaxation
            (:mod:`repro.graph.apsp`); ``"python"`` runs ``n`` heap
            Dijkstras (the legacy reference); ``"auto"`` (the default)
            uses the vectorized engine whenever its tie-break is exact
            for the graph's weights (it is for anything but
            pathologically tiny weights) and the python engine
            otherwise.  All engines produce bit-identical matrices.

    Raises:
        NotStronglyConnectedError: if any pair is unreachable.
        GraphError: for an unknown ``engine``, or ``"vectorized"`` on
            a graph with weights below the engine's safe threshold.
    """

    def __init__(self, g: Digraph, engine: str = "auto"):
        if engine not in ("auto", "vectorized", "python"):
            raise GraphError(
                f"unknown DistanceOracle engine {engine!r}; "
                "choose 'auto', 'vectorized', or 'python'"
            )
        n = g.n
        self._g = g
        if engine == "auto":
            csr = CSRGraph.from_digraph(g)
            engine = "vectorized" if vectorized_engine_supported(csr) else "python"
        else:
            csr = CSRGraph.from_digraph(g) if engine == "vectorized" else None
        self._engine = engine
        if engine == "vectorized":
            d, pmat = apsp_matrices(csr)
            unreachable = np.isinf(d).any(axis=1)
            if unreachable.any():
                s = int(np.flatnonzero(unreachable)[0])
                raise NotStronglyConnectedError(
                    f"vertex unreachable from {s}; graph must be strongly connected"
                )
            self._d = d
            self._parent: List[List[int]] = pmat.tolist()
        else:
            self._d = np.empty((n, n), dtype=np.float64)
            self._parent = []
            for s in range(n):
                dist, parent = dijkstra(g, s)
                if any(x == INF for x in dist):
                    raise NotStronglyConnectedError(
                        f"vertex unreachable from {s}; graph must be strongly connected"
                    )
                self._d[s, :] = dist
                self._parent.append(parent)
        self._r = self._d + self._d.T
        if g.frozen:
            _ORACLE_CACHE[g] = weakref.ref(self)

    @classmethod
    def from_arrays(
        cls,
        g: Digraph,
        d: np.ndarray,
        parent: np.ndarray,
        engine: str = "vectorized",
    ) -> "DistanceOracle":
        """Rehydrate an oracle from stored matrices, skipping the APSP.

        This is the artifact-store load path
        (:mod:`repro.api.artifacts`): ``d`` and ``parent`` come straight
        out of a memory-mapped ``.npz`` blob, so the distance matrix is
        shared read-only between every process that loads the entry.
        The roundtrip matrix is derived with the same ``d + d.T`` the
        constructor uses, and ``parent`` rows are converted to the
        plain-list form the path walkers expect — a rehydrated oracle is
        bit-identical to a fresh build (asserted in
        ``tests/test_store.py``).

        Args:
            g: the digraph the matrices were built from.
            d: ``(n, n)`` float64 one-way distance matrix.
            parent: ``(n, n)`` integer forward-tree parent matrix.
            engine: the engine recorded at build time (provenance only;
                no computation is engine-dependent here).
        """
        n = g.n
        d = np.asarray(d, dtype=np.float64)
        parent = np.asarray(parent)
        if d.shape != (n, n) or parent.shape != (n, n):
            raise GraphError(
                f"stored oracle arrays have shapes {d.shape}/{parent.shape}, "
                f"expected ({n}, {n})"
            )
        self = cls.__new__(cls)
        self._g = g
        self._engine = str(engine)
        self._d = d
        self._parent = parent.tolist()
        self._r = self._d + self._d.T
        if g.frozen:
            _ORACLE_CACHE[g] = weakref.ref(self)
        return self

    @property
    def graph(self) -> Digraph:
        """The underlying digraph."""
        return self._g

    @property
    def engine(self) -> str:
        """Which engine built this oracle (``"vectorized"`` or
        ``"python"``; ``"auto"`` resolves at construction)."""
        return self._engine

    @property
    def n(self) -> int:
        """Vertex count."""
        return self._g.n

    @property
    def d_matrix(self) -> np.ndarray:
        """The full one-way distance matrix (read-only view)."""
        return self._d

    @property
    def r_matrix(self) -> np.ndarray:
        """The full roundtrip distance matrix (read-only view)."""
        return self._r

    def d(self, u: int, v: int) -> float:
        """One-way distance ``d(u, v)``."""
        return float(self._d[u, v])

    def r(self, u: int, v: int) -> float:
        """Roundtrip distance ``r(u, v) = d(u, v) + d(v, u)``."""
        return float(self._r[u, v])

    def path(self, u: int, v: int) -> List[int]:
        """Canonical shortest path ``u -> v`` from the cached tree."""
        path = [v]
        parent = self._parent[u]
        while path[-1] != u:
            p = parent[path[-1]]
            if p == -1:
                raise GraphError(f"no path {u} -> {v}")
            path.append(p)
        path.reverse()
        return path

    def next_hop(self, u: int, v: int) -> int:
        """First vertex after ``u`` on the canonical shortest ``u -> v``
        path (``v`` itself if adjacent on the tree)."""
        if u == v:
            raise GraphError("next_hop undefined for u == v")
        # Walk up from v until the parent is u.
        parent = self._parent[u]
        x = v
        while parent[x] != u:
            x = parent[x]
            if x == -1:
                raise GraphError(f"no path {u} -> {v}")
        return x

    def forward_tree_parents(self, source: int) -> List[int]:
        """Parents of the canonical shortest-path out-tree rooted at
        ``source`` (``parent[v]`` precedes ``v`` on the path
        ``source -> v``)."""
        return list(self._parent[source])

    def parent_matrix(self) -> np.ndarray:
        """The full ``(n, n)`` int64 canonical parent matrix (row ``s``
        is the out-tree rooted at ``s``; freshly allocated).  This is
        the array form the incremental repair protocol
        (:mod:`repro.graph.repair`) edits row-wise."""
        return np.asarray(self._parent, dtype=np.int64)

    def cached_first_hops(self) -> "np.ndarray | None":
        """The memoized dense first-hop matrix, or ``None`` when
        :meth:`first_hop_matrix` has not run yet (repair uses this to
        decide whether there is a table worth patching)."""
        return getattr(self, "_first_hop", None)

    def seed_first_hops(self, first: np.ndarray) -> None:
        """Install a precomputed dense first-hop matrix.

        The incremental repair path builds the successor oracle's
        matrix by patching only the invalidated rows of the
        predecessor's; the result must equal what
        :meth:`first_hop_matrix` would compute from scratch (the churn
        differential suite asserts bit-identity).
        """
        first = np.asarray(first, dtype=np.int32)
        if first.shape != (self.n, self.n):
            raise GraphError(
                f"first-hop matrix has shape {first.shape}, "
                f"expected ({self.n}, {self.n})"
            )
        if first.flags.writeable:
            first = first.copy()
            first.flags.writeable = False
        self._first_hop = first

    def first_hop_matrix(self) -> np.ndarray:
        """``(n, n)`` int32 matrix of canonical first hops:
        ``F[u, v] == next_hop(u, v)`` for every ``u != v`` (``-1`` on
        the diagonal), computed by vectorized pointer doubling over the
        cached parent trees and memoized.

        This is the compiled form of full-table forwarding: the
        vectorized routing engine gathers ``F[at, dest]`` per frontier
        sweep instead of walking parent chains per packet.

        Raises :class:`~repro.exceptions.TableTooLargeError` above the
        configured dense-table threshold instead of OOMing; the blocked
        table family (:meth:`first_hop_block`) covers that regime.
        """
        from repro.graph.limits import check_dense_table

        check_dense_table(self.n, "first-hop matrix")
        cached = getattr(self, "_first_hop", None)
        if cached is not None:
            return cached
        store, store_key = self._first_hop_store_key()
        if store is not None:
            entry = store.get(store_key)
            if entry is not None and entry.arrays["first"].shape == (self.n, self.n):
                self._first_hop = entry.arrays["first"]
                return self._first_hop
        t0 = time.perf_counter()
        n = self.n
        parent = np.asarray(self._parent, dtype=np.int32)
        rows = np.arange(n, dtype=np.int32)[:, None]
        cols = np.arange(n, dtype=np.int32)[None, :].repeat(n, axis=0)
        # F[u, v] = v where parent[u, v] == u, else F[u, parent[u, v]];
        # resolve the recursion with jump pointers (log diameter
        # rounds of take_along_axis instead of n^2 chain walks).
        first = np.where(parent == rows, cols, -1).astype(np.int32)
        jump = np.where(parent >= 0, parent, cols)
        while True:
            hop = np.take_along_axis(first, jump, axis=1)
            progressed = (first < 0) & (hop >= 0)
            if not progressed.any():
                break  # only the diagonal (its parent is -1) remains
            first = np.where(progressed, hop, first)
            jump = np.take_along_axis(jump, jump, axis=1)
        np.fill_diagonal(first, -1)
        first.flags.writeable = False
        self._first_hop = first
        if store is not None:
            store.put(
                store_key,
                {"first": first},
                meta={"engine": self._engine},
                build_seconds=time.perf_counter() - t0,
            )
        return first

    def first_hop_block(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``lo:hi`` of :meth:`first_hop_matrix`, computed with
        ``O((hi - lo) * n)`` peak memory from the cached parent trees
        (each row is a pure function of its own tree, so the block is
        bit-identical to the corresponding dense slice)."""
        from repro.graph.blocked import first_hops_from_parents

        return first_hops_from_parents(
            np.asarray(self._parent[lo:hi], dtype=np.int32), lo
        )

    def _first_hop_store_key(self):
        """``(store, key)`` for the persisted first-hop matrix, or
        ``(None, None)`` when persistence is off or the graph is not
        frozen.  The key is engine- and seed-free: the matrix is a pure
        function of the (content-hashed) graph."""
        if not self._g.frozen:
            return None, None
        from repro.store import StoreKey, default_store, graph_content_hash

        store = default_store()
        if store is None:
            return None, None
        key = StoreKey(
            "first-hop", 1, {"graph": graph_content_hash(self._g)}
        )
        return store, key

    def diameter(self) -> float:
        """One-way diameter ``max d(u, v)``."""
        return float(self._d.max())

    def rt_diameter(self) -> float:
        """Roundtrip diameter ``max r(u, v)`` (``RTDiam`` in Section 4)."""
        return float(self._r.max())
