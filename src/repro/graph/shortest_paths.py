"""Shortest paths and the all-pairs distance oracle.

The paper's preprocessing is centralized and is dominated by an
all-pairs shortest-path computation (Section 6).  This module provides:

* single-source Dijkstra (:func:`dijkstra`) returning distances and
  shortest-path-tree parents, with the deterministic tie-breaking the
  rest of the library relies on;
* :func:`shortest_path` extraction;
* :class:`DistanceOracle`, a cached all-pairs distance matrix with the
  roundtrip matrix ``r = d + d^T`` alongside (used by every scheme).

Dijkstra tie-breaking: when two paths to ``v`` have equal length, the
one whose predecessor has the smaller vertex id wins.  This makes
shortest-path trees canonical, which matters for the cluster-closure
property of the RTZ substrate (see ``repro.rtz.routing``).
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, NotStronglyConnectedError
from repro.graph.digraph import Digraph

INF = math.inf


def dijkstra(
    g: Digraph,
    source: int,
    reverse: bool = False,
) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths.

    Args:
        g: the digraph.
        source: source vertex.
        reverse: when ``True``, compute distances *into* ``source``
            (i.e. run on reversed edges); the returned parents then form
            an in-tree: ``parent[v]`` is the successor of ``v`` on a
            shortest ``v -> source`` path.

    Returns:
        ``(dist, parent)`` where ``dist[v]`` is the distance and
        ``parent[v]`` the shortest-path-tree parent (``-1`` for the
        source and for unreachable vertices).
    """
    n = g.n
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    # heap entries: (distance, parent_id_tiebreak, vertex)
    heap: List[Tuple[float, int, int]] = [(0.0, -1, source)]
    done = [False] * n
    neighbors = g.in_neighbors if reverse else g.out_neighbors
    while heap:
        d, _tie, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for (v, w) in neighbors(u):
            nd = d + w
            if nd < dist[v] - 1e-12 or (
                abs(nd - dist[v]) <= 1e-12 and parent[v] > u and not done[v]
            ):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, u, v))
    return dist, parent


def shortest_path(g: Digraph, source: int, target: int) -> List[int]:
    """Return a shortest path ``source -> ... -> target`` as vertex ids.

    Raises:
        GraphError: if ``target`` is unreachable from ``source``.
    """
    dist, parent = dijkstra(g, source)
    if dist[target] == INF:
        raise GraphError(f"vertex {target} unreachable from {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_length(g: Digraph, path: Sequence[int]) -> float:
    """Return the total weight of a vertex path."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += g.weight(u, v)
    return total


class DistanceOracle:
    """All-pairs distances with the derived roundtrip metric.

    Computes ``n`` Dijkstra runs once and caches:

    * ``d`` — the ``n x n`` one-way distance matrix (``d[u, v]`` is the
      shortest ``u -> v`` distance),
    * ``r`` — the roundtrip matrix ``r[u, v] = d[u, v] + d[v, u]``
      (Section 1.1: the minimum cost of a directed tour from ``u``
      through ``v`` back to ``u``),
    * forward shortest-path-tree parents from every source, used to
      extract canonical shortest paths without re-running Dijkstra.

    Raises:
        NotStronglyConnectedError: if any pair is unreachable.
    """

    def __init__(self, g: Digraph):
        n = g.n
        self._g = g
        self._d = np.empty((n, n), dtype=np.float64)
        self._parent: List[List[int]] = []
        for s in range(n):
            dist, parent = dijkstra(g, s)
            if any(x == INF for x in dist):
                raise NotStronglyConnectedError(
                    f"vertex unreachable from {s}; graph must be strongly connected"
                )
            self._d[s, :] = dist
            self._parent.append(parent)
        self._r = self._d + self._d.T

    @property
    def graph(self) -> Digraph:
        """The underlying digraph."""
        return self._g

    @property
    def n(self) -> int:
        """Vertex count."""
        return self._g.n

    @property
    def d_matrix(self) -> np.ndarray:
        """The full one-way distance matrix (read-only view)."""
        return self._d

    @property
    def r_matrix(self) -> np.ndarray:
        """The full roundtrip distance matrix (read-only view)."""
        return self._r

    def d(self, u: int, v: int) -> float:
        """One-way distance ``d(u, v)``."""
        return float(self._d[u, v])

    def r(self, u: int, v: int) -> float:
        """Roundtrip distance ``r(u, v) = d(u, v) + d(v, u)``."""
        return float(self._r[u, v])

    def path(self, u: int, v: int) -> List[int]:
        """Canonical shortest path ``u -> v`` from the cached tree."""
        path = [v]
        parent = self._parent[u]
        while path[-1] != u:
            p = parent[path[-1]]
            if p == -1:
                raise GraphError(f"no path {u} -> {v}")
            path.append(p)
        path.reverse()
        return path

    def next_hop(self, u: int, v: int) -> int:
        """First vertex after ``u`` on the canonical shortest ``u -> v``
        path (``v`` itself if adjacent on the tree)."""
        if u == v:
            raise GraphError("next_hop undefined for u == v")
        # Walk up from v until the parent is u.
        parent = self._parent[u]
        x = v
        while parent[x] != u:
            x = parent[x]
            if x == -1:
                raise GraphError(f"no path {u} -> {v}")
        return x

    def forward_tree_parents(self, source: int) -> List[int]:
        """Parents of the canonical shortest-path out-tree rooted at
        ``source`` (``parent[v]`` precedes ``v`` on the path
        ``source -> v``)."""
        return list(self._parent[source])

    def diameter(self) -> float:
        """One-way diameter ``max d(u, v)``."""
        return float(self._d.max())

    def rt_diameter(self) -> float:
        """Roundtrip diameter ``max r(u, v)`` (``RTDiam`` in Section 4)."""
        return float(self._r.max())
