"""The roundtrip metric, the ``Init_v`` total order, and neighborhoods.

Section 1.1 defines the roundtrip distance
``r(u, v) = d(u, v) + d(v, u)`` — the minimum cost of a directed tour
from ``u`` through ``v`` and back.  It is symmetric and satisfies the
triangle inequality, so it is a genuine metric on a strongly connected
digraph (vertices at distance 0 are identical because weights are
positive).

Section 2 defines, for each node ``v``, the total order ``u <_v w``:

1. ``r(v, u) < r(v, w)``, or
2. equal roundtrip and ``d(u, v) < d(w, v)``, or
3. both equal and ``ID_u < ID_w``.

Sorting all of ``V`` by this key yields the sequence ``Init_v`` starting
with ``v`` itself; the paper's neighborhoods are prefixes of it:

* Section 2: ``N(u)`` = first ``sqrt(n)`` nodes of ``Init_u``;
* Section 3: ``N_i(u)`` = first ``n^{i/k}`` nodes of ``Init_u``;
* Section 4: ``N^d(v)`` = all nodes within roundtrip distance ``d``.

The tie-break ID is the node's adversarial *name*, not its internal
vertex id ("ID_u refers to the index of u in a listing of V"); callers
pass the naming's id list so the structure stays topology-independent.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.shortest_paths import DistanceOracle


class RoundtripMetric:
    """Roundtrip-metric structure over a :class:`DistanceOracle`.

    Precomputes ``Init_v`` for every ``v`` lazily and caches it, since
    the order is consulted many times during scheme construction.

    Args:
        oracle: all-pairs distance oracle of the digraph.
        ids: tie-breaking identifier per vertex (typically the
            adversarial node names).  Defaults to the vertex ids.
    """

    def __init__(self, oracle: DistanceOracle, ids: Optional[Sequence[int]] = None):
        self._oracle = oracle
        n = oracle.n
        if ids is None:
            ids = list(range(n))
        if len(ids) != n:
            raise GraphError(
                f"ids must have length n={n}, got {len(ids)}"
            )
        self._ids = list(ids)
        self._init_cache: dict[int, List[int]] = {}

    def __getstate__(self):
        """Pickle without the per-process shared-substrate cache
        (:func:`repro.rtz.routing.shared_substrate` hangs it on the
        metric): shipping a scheme to a pool worker must not drag every
        substrate ever built on this metric along with it."""
        state = dict(self.__dict__)
        state.pop("_rtz_substrate_cache", None)
        return state

    @property
    def oracle(self) -> DistanceOracle:
        """The underlying distance oracle."""
        return self._oracle

    @property
    def ids(self) -> List[int]:
        """The tie-breaking identifiers (a copy)."""
        return list(self._ids)

    @property
    def n(self) -> int:
        """Vertex count."""
        return self._oracle.n

    def d(self, u: int, v: int) -> float:
        """One-way distance ``d(u, v)``."""
        return self._oracle.d(u, v)

    def r(self, u: int, v: int) -> float:
        """Roundtrip distance ``r(u, v)``."""
        return self._oracle.r(u, v)

    # ------------------------------------------------------------------
    # the total order
    # ------------------------------------------------------------------
    def order_key(self, v: int, u: int) -> tuple:
        """The sort key of ``u`` in ``Init_v`` (Section 2's three rules)."""
        return (self._oracle.r(v, u), self._oracle.d(u, v), self._ids[u])

    def precedes(self, v: int, u: int, w: int) -> bool:
        """Return whether ``u <_v w`` in the Section 2 total order."""
        return self.order_key(v, u) < self.order_key(v, w)

    def init_order(self, v: int) -> List[int]:
        """Return ``Init_v``: all vertices sorted by ``<_v``.

        The first element is always ``v`` itself (its roundtrip distance
        to itself is 0 and weights are positive).
        """
        cached = self._init_cache.get(v)
        if cached is None:
            cached = sorted(range(self.n), key=lambda u: self.order_key(v, u))
            self._init_cache[v] = cached
        return list(cached)

    # ------------------------------------------------------------------
    # neighborhoods
    # ------------------------------------------------------------------
    def neighborhood(self, v: int, size: int) -> List[int]:
        """First ``size`` nodes of ``Init_v`` (the paper's ``N`` balls).

        ``size`` is clamped to ``n``.
        """
        if size < 0:
            raise GraphError(f"neighborhood size must be >= 0, got {size}")
        return self.init_order(v)[: min(size, self.n)]

    def sqrt_neighborhood(self, v: int) -> List[int]:
        """Section 2's ``N(v)``: the first ``ceil(sqrt(n))`` nodes."""
        return self.neighborhood(v, int(math.ceil(math.sqrt(self.n))))

    def level_neighborhood(self, v: int, i: int, k: int) -> List[int]:
        """Section 3's ``N_i(v)``: the first ``ceil(n^{i/k})`` nodes.

        ``N_0(v)`` is ``{v}`` (the first node of ``Init_v``) and
        ``N_k(v)`` is all of ``V``.
        """
        if not (0 <= i <= k):
            raise GraphError(f"level i={i} out of range [0, {k}]")
        size = int(math.ceil(self.n ** (i / k)))
        return self.neighborhood(v, size)

    def ball(self, v: int, radius: float) -> List[int]:
        """Section 4's ``N^d(v)``: all ``w`` with ``r(v, w) <= radius``."""
        row = self._oracle.r_matrix[v]
        members = np.nonzero(row <= radius + 1e-12)[0]
        return [int(w) for w in members]

    def radius_of_kth(self, v: int, size: int) -> float:
        """Roundtrip distance from ``v`` to the last node of
        ``neighborhood(v, size)`` — the effective ball radius."""
        nb = self.neighborhood(v, size)
        return self._oracle.r(v, nb[-1])

    # ------------------------------------------------------------------
    # cluster geometry (used by the cover construction, Section 4)
    # ------------------------------------------------------------------
    def rt_radius_from(self, c: int, members: Sequence[int]) -> float:
        """``max r(c, w)`` over ``w`` in ``members``."""
        if len(members) == 0:
            return 0.0
        idx = np.fromiter(members, dtype=np.int64)
        return float(self._oracle.r_matrix[c, idx].max())

    def rt_center(self, members: Sequence[int]) -> int:
        """``RTCenter``: a member minimising the max roundtrip distance
        to the other members (ties to smaller vertex id)."""
        if len(members) == 0:
            raise GraphError("rt_center of an empty cluster")
        idx = np.fromiter(sorted(members), dtype=np.int64)
        sub = self._oracle.r_matrix[np.ix_(idx, idx)]
        eccentricities = sub.max(axis=1)
        best = int(np.argmin(eccentricities))
        return int(idx[best])

    def rt_radius(self, members: Sequence[int]) -> float:
        """``RTRad``: the max roundtrip distance from the center."""
        c = self.rt_center(members)
        return self.rt_radius_from(c, members)

    def rt_diameter(self, members: Sequence[int]) -> float:
        """``RTDiam`` of a cluster: max pairwise roundtrip distance."""
        if len(members) == 0:
            return 0.0
        idx = np.fromiter(sorted(members), dtype=np.int64)
        sub = self._oracle.r_matrix[np.ix_(idx, idx)]
        return float(sub.max())

    def nearest(self, v: int, candidates: Sequence[int]) -> int:
        """The candidate minimising the ``Init_v`` order key (i.e. the
        closest-by-roundtrip candidate, paper tie-breaks included)."""
        if len(candidates) == 0:
            raise GraphError("nearest() over an empty candidate set")
        return min(candidates, key=lambda u: self.order_key(v, u))


def verify_metric_axioms(metric: RoundtripMetric, tol: float = 1e-9) -> None:
    """Assert the roundtrip metric axioms on every triple (test helper).

    Checks symmetry, positivity off the diagonal, zero diagonal, and the
    triangle inequality ``r(u, w) <= r(u, v) + r(v, w)``.

    Raises:
        AssertionError: on the first violated axiom.
    """
    r = metric.oracle.r_matrix
    n = metric.n
    assert np.allclose(r, r.T, atol=tol), "roundtrip metric must be symmetric"
    assert np.all(np.diag(r) == 0), "r(v, v) must be 0"
    off_diag = r + np.eye(n) * 1.0
    assert np.all(off_diag > 0), "r(u, v) must be positive for u != v"
    for v in range(n):
        # r[u, w] <= r[u, v] + r[v, w] for all u, w simultaneously:
        via = r[:, v][:, None] + r[v, :][None, :]
        assert np.all(r <= via + tol), f"triangle inequality fails via {v}"
