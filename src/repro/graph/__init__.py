"""Graph substrate: digraphs, generators, distances, roundtrip metric.

This subpackage implements systems S1-S5 of DESIGN.md: the fixed-port
weighted digraph model of Section 1.1, strong-connectivity utilities,
shortest-path machinery, and the roundtrip metric with the ``Init_v``
total order used by every scheme in the paper.
"""

from repro.graph.apsp import (
    TIE_EPS,
    apsp_matrices,
    apsp_rows,
    min_distances,
    vectorized_engine_supported,
)
from repro.graph.csr import CSRGraph
from repro.graph.delta import (
    Arrival,
    Departure,
    GraphDelta,
    LinkDown,
    LinkUp,
    Reweight,
)
from repro.graph.digraph import Digraph, Edge, from_edge_list
from repro.graph.generators import (
    FAMILY_NAMES,
    asymmetric_torus,
    bidirect,
    bidirected_clique,
    bidirected_hypercube,
    bidirected_torus,
    directed_cycle,
    grid_with_shortcuts,
    layered_random,
    parse_edgelist,
    power_law_directed,
    random_dht_overlay,
    random_strongly_connected,
    scale_free_directed,
    snapshot_from_edgelist,
    standard_families,
)
from repro.graph.repair import (
    RepairedAPSP,
    RepairReport,
    repair_apsp,
    repair_oracle,
)
from repro.graph.roundtrip import RoundtripMetric, verify_metric_axioms
from repro.graph.scc import (
    condensation_order,
    is_strongly_connected,
    require_strongly_connected,
    strongly_connected_components,
)
from repro.graph.shortest_paths import (
    DistanceOracle,
    dijkstra,
    path_length,
    shortest_path,
)

__all__ = [
    "Digraph",
    "Edge",
    "from_edge_list",
    "CSRGraph",
    "GraphDelta",
    "Reweight",
    "LinkDown",
    "LinkUp",
    "Arrival",
    "Departure",
    "RepairReport",
    "RepairedAPSP",
    "repair_apsp",
    "repair_oracle",
    "apsp_matrices",
    "apsp_rows",
    "min_distances",
    "vectorized_engine_supported",
    "TIE_EPS",
    "DistanceOracle",
    "dijkstra",
    "shortest_path",
    "path_length",
    "RoundtripMetric",
    "verify_metric_axioms",
    "strongly_connected_components",
    "is_strongly_connected",
    "require_strongly_connected",
    "condensation_order",
    "FAMILY_NAMES",
    "random_strongly_connected",
    "directed_cycle",
    "bidirected_torus",
    "asymmetric_torus",
    "random_dht_overlay",
    "layered_random",
    "scale_free_directed",
    "power_law_directed",
    "grid_with_shortcuts",
    "parse_edgelist",
    "snapshot_from_edgelist",
    "bidirected_clique",
    "bidirected_hypercube",
    "bidirect",
    "standard_families",
]
