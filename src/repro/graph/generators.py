"""Workload graph generators.

The paper has no testbed, so the benchmark workloads are synthetic
strongly connected digraph families chosen to exercise the behaviours
the paper's introduction motivates:

* :func:`random_strongly_connected` — sparse Erdos-Renyi-style digraphs
  repaired to strong connectivity; the generic "arbitrary network".
* :func:`directed_cycle` — the extreme asymmetric case: ``d(u, v)`` and
  ``d(v, u)`` are maximally unbalanced, stressing the roundtrip metric.
* :func:`bidirected_torus` — the grid example from the paper's own
  introduction (every edge present in both directions).
* :func:`asymmetric_torus` — torus with direction-dependent weights,
  a "road network with one-way streets" analogue.
* :func:`random_dht_overlay` — ring plus random chords, the
  peer-to-peer overlay topology that Section 6 suggests as an
  application domain.
* :func:`layered_random` — DAG-like layers closed by a feedback
  spine: strongly connected but with long roundtrips, the hard regime
  for one-way routing that motivates roundtrip routing.
* :func:`scale_free_directed` — preferential attachment with hubs,
  an AS-internet-like topology.
* :func:`power_law_directed` — explicit power-law out-degrees (a
  configuration-model cousin of the preferential-attachment family;
  the degree exponent is a knob, which scenario specs exploit).
* :func:`grid_with_shortcuts` — the torus grid plus random long-range
  bidirected shortcut chords, the small-world regime between the pure
  grid and the random digraph.
* :func:`snapshot_from_edgelist` — a frozen graph parsed from an
  edge-list text (``tail head [weight]`` lines), so recorded topology
  snapshots can be committed and replayed as scenario data.
* :func:`bidirected_clique`, :func:`bidirected_hypercube` — dense
  bidirected instances used by the lower-bound experiments (Section 5
  reduces roundtrip hardness to undirected hardness on exactly this
  doubled form).

All generators take an explicit ``random.Random`` seed object and
return frozen graphs with adversarial ports drawn from that rng, so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import Digraph
from repro.graph.scc import strongly_connected_components


def _weight(rng: random.Random, lo: float, hi: float) -> float:
    """A uniformly random edge weight in ``[lo, hi]``."""
    if lo > hi or lo <= 0:
        raise GraphError(f"invalid weight range [{lo}, {hi}]")
    return rng.uniform(lo, hi)


def directed_cycle(
    n: int,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 1.0,
) -> Digraph:
    """A single directed cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    The most asymmetric strongly connected digraph: ``d(u, v)`` may be 1
    while ``d(v, u) = n - 1``.
    """
    rng = rng or random.Random(0)
    g = Digraph(n)
    for u in range(n):
        g.add_edge(u, (u + 1) % n, _weight(rng, w_lo, w_hi))
    return g.freeze(rng)


def random_strongly_connected(
    n: int,
    avg_out_degree: float = 3.0,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 10.0,
) -> Digraph:
    """Sparse random digraph repaired to strong connectivity.

    Starts from a random Hamiltonian backbone cycle (which guarantees
    strong connectivity while keeping diameters interesting) and adds
    random chords until the target average out-degree is met.

    Args:
        n: vertex count.
        avg_out_degree: target mean out-degree (must be >= 1).
        rng: randomness source.
        w_lo, w_hi: edge-weight range.
    """
    if avg_out_degree < 1:
        raise GraphError("avg_out_degree must be >= 1 for strong connectivity")
    rng = rng or random.Random(0)
    g = Digraph(n)
    backbone = list(range(n))
    rng.shuffle(backbone)
    present = set()
    for i in range(n):
        u, v = backbone[i], backbone[(i + 1) % n]
        g.add_edge(u, v, _weight(rng, w_lo, w_hi))
        present.add((u, v))
    target_m = int(avg_out_degree * n)
    attempts = 0
    while len(present) < target_m and attempts < 20 * target_m:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in present:
            continue
        g.add_edge(u, v, _weight(rng, w_lo, w_hi))
        present.add((u, v))
    return g.freeze(rng)


def bidirected_torus(
    rows: int,
    cols: int,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 1.0,
) -> Digraph:
    """A ``rows x cols`` torus with each undirected edge doubled.

    The paper's introduction uses the planar grid as its running
    example; the torus avoids boundary effects.
    """
    rng = rng or random.Random(0)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    g = Digraph(n)
    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            for (dr, dc) in ((0, 1), (1, 0)):
                v = vid(r + dr, c + dc)
                w = _weight(rng, w_lo, w_hi)
                g.add_edge(u, v, w)
                g.add_edge(v, u, w)
    return g.freeze(rng)


def asymmetric_torus(
    rows: int,
    cols: int,
    rng: Optional[random.Random] = None,
    forward_w: float = 1.0,
    backward_w: float = 4.0,
) -> Digraph:
    """Torus whose two directions per link have different weights.

    Models one-way-favoured links (e.g. asymmetric bandwidth); the
    roundtrip metric stays symmetric but one-way distances do not.
    """
    rng = rng or random.Random(0)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    g = Digraph(n)
    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            for (dr, dc) in ((0, 1), (1, 0)):
                v = vid(r + dr, c + dc)
                g.add_edge(u, v, forward_w)
                g.add_edge(v, u, backward_w)
    return g.freeze(rng)


def random_dht_overlay(
    n: int,
    chords_per_node: int = 2,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 4.0,
) -> Digraph:
    """Directed ring plus random directed chords (peer-to-peer overlay).

    Section 6 suggests compact roundtrip routing as a tool for routing
    and searching peer-to-peer overlays; this family mimics a
    Chord-like overlay whose finger links are one-directional.
    """
    rng = rng or random.Random(0)
    g = Digraph(n)
    present = set()
    for u in range(n):
        v = (u + 1) % n
        g.add_edge(u, v, _weight(rng, w_lo, w_hi))
        present.add((u, v))
    for u in range(n):
        added = 0
        attempts = 0
        while added < chords_per_node and attempts < 10 * chords_per_node:
            attempts += 1
            v = rng.randrange(n)
            if v == u or (u, v) in present:
                continue
            g.add_edge(u, v, _weight(rng, w_lo, w_hi))
            present.add((u, v))
            added += 1
    return g.freeze(rng)


def layered_random(
    layers: int,
    width: int,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 3.0,
    density: float = 0.5,
) -> Digraph:
    """Layered feed-forward digraph closed by a feedback spine.

    Vertices are arranged in ``layers`` layers of ``width``; random
    forward edges connect consecutive layers and a single heavy spine
    returns from the last layer to the first, so every roundtrip must
    traverse the spine: roundtrip distances are large and uniform while
    one-way forward distances are small, which is the regime where
    roundtrip stretch differs most from one-way stretch.
    """
    rng = rng or random.Random(0)
    n = layers * width
    g = Digraph(n)

    def vid(layer: int, i: int) -> int:
        return layer * width + i

    present = set()

    def add(u: int, v: int, w: float) -> None:
        if u != v and (u, v) not in present:
            g.add_edge(u, v, w)
            present.add((u, v))

    for layer in range(layers - 1):
        # Guarantee per-node forward connectivity, then sprinkle.
        for i in range(width):
            j = rng.randrange(width)
            add(vid(layer, i), vid(layer + 1, j), _weight(rng, w_lo, w_hi))
        for i in range(width):
            for j in range(width):
                if rng.random() < density / width:
                    add(vid(layer, i), vid(layer + 1, j), _weight(rng, w_lo, w_hi))
        # Ensure every node of layer+1 has an in-edge from this layer.
        covered = {v for (u, v) in present if layer * width <= u < (layer + 1) * width}
        for j in range(width):
            v = vid(layer + 1, j)
            if v not in covered:
                add(vid(layer, rng.randrange(width)), v, _weight(rng, w_lo, w_hi))
    # Intra-layer ring so each layer is internally reachable.
    for layer in range(layers):
        for i in range(width):
            add(vid(layer, i), vid(layer, (i + 1) % width), _weight(rng, w_lo, w_hi))
    # Feedback spine from every last-layer node to layer 0, node 0.
    for i in range(width):
        add(vid(layers - 1, i), vid(0, 0), _weight(rng, w_lo, w_hi) * 2)
    return g.freeze(rng)


def scale_free_directed(
    n: int,
    rng: Optional[random.Random] = None,
    attach: int = 2,
    w_lo: float = 1.0,
    w_hi: float = 3.0,
) -> Digraph:
    """Directed preferential-attachment graph closed into one SCC.

    New nodes attach ``attach`` out-edges to targets drawn with
    probability proportional to in-degree (Barabasi-Albert flavour),
    producing hub-dominated topologies like AS-level internets; a
    return path per node (to a random earlier attachment point) plus a
    backbone cycle guarantees strong connectivity.
    """
    rng = rng or random.Random(0)
    if n < 3:
        return directed_cycle(n, rng)
    g = Digraph(n)
    present = set()

    def add(u: int, v: int, w: float) -> None:
        if u != v and (u, v) not in present:
            g.add_edge(u, v, w)
            present.add((u, v))

    # backbone cycle for strong connectivity
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        add(order[i], order[(i + 1) % n], _weight(rng, w_lo, w_hi))
    # preferential attachment on top
    targets: List[int] = [order[0], order[1]]
    for i in range(2, n):
        u = order[i]
        for _ in range(attach):
            v = rng.choice(targets)
            add(u, v, _weight(rng, w_lo, w_hi))
            targets.append(v)
        targets.append(u)
    return g.freeze(rng)


def power_law_directed(
    n: int,
    rng: Optional[random.Random] = None,
    exponent: float = 2.2,
    max_degree: Optional[int] = None,
    w_lo: float = 1.0,
    w_hi: float = 3.0,
) -> Digraph:
    """Directed graph with explicit power-law out-degrees.

    Each vertex draws its out-degree from ``P(d) ~ d^-exponent`` over
    ``1..max_degree`` (inverse-CDF sampling, default cap ``n // 4``)
    and attaches that many chords to uniformly random targets; a
    shuffled backbone cycle guarantees strong connectivity.  Unlike
    :func:`scale_free_directed` (preferential attachment, where the
    exponent is emergent), the degree exponent here is a direct knob —
    the property scenario specs parameterize.

    Raises:
        GraphError: for ``exponent <= 1`` (the tail mass diverges) or
            an invalid ``max_degree``.
    """
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must be > 1, got {exponent}")
    rng = rng or random.Random(0)
    if n < 3:
        return directed_cycle(n, rng)
    cap = max_degree if max_degree is not None else max(1, n // 4)
    if not 1 <= cap < n:
        raise GraphError(f"max_degree must be in [1, n), got {cap}")
    # Inverse-CDF table over the truncated power law.
    masses = [d ** -exponent for d in range(1, cap + 1)]
    total = sum(masses)
    cdf = []
    acc = 0.0
    for m in masses:
        acc += m
        cdf.append(acc / total)

    def draw_degree() -> int:
        u = rng.random()
        for d, threshold in enumerate(cdf, start=1):
            if u <= threshold:
                return d
        return cap

    g = Digraph(n)
    present = set()

    def add(u: int, v: int, w: float) -> None:
        if u != v and (u, v) not in present:
            g.add_edge(u, v, w)
            present.add((u, v))

    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        add(order[i], order[(i + 1) % n], _weight(rng, w_lo, w_hi))
    for u in range(n):
        wanted = draw_degree()
        attempts = 0
        added = 0
        while added < wanted and attempts < 10 * wanted + 10:
            attempts += 1
            v = rng.randrange(n)
            if v == u or (u, v) in present:
                continue
            add(u, v, _weight(rng, w_lo, w_hi))
            added += 1
    return g.freeze(rng)


def grid_with_shortcuts(
    rows: int,
    cols: int,
    rng: Optional[random.Random] = None,
    shortcuts: Optional[int] = None,
    w_lo: float = 1.0,
    w_hi: float = 1.0,
    shortcut_lo: float = 1.0,
    shortcut_hi: float = 2.0,
) -> Digraph:
    """A bidirected torus grid with random long-range shortcut chords.

    Starts from :func:`bidirected_torus`'s edge set and adds
    ``shortcuts`` (default ``rows * cols // 4``) bidirected chords
    between uniformly random vertex pairs — the small-world regime
    where most pairs ride the grid but a few hop across it, sitting
    between the pure torus and the random digraph.

    Raises:
        GraphError: for a negative shortcut count.
    """
    rng = rng or random.Random(0)
    n = rows * cols
    count = shortcuts if shortcuts is not None else n // 4
    if count < 0:
        raise GraphError(f"shortcuts must be >= 0, got {count}")

    def vid(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    g = Digraph(n)
    present = set()

    def add_both(u: int, v: int, w: float) -> None:
        for (a, b) in ((u, v), (v, u)):
            if (a, b) not in present:
                g.add_edge(a, b, w)
                present.add((a, b))

    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            for (dr, dc) in ((0, 1), (1, 0)):
                add_both(u, vid(r + dr, c + dc), _weight(rng, w_lo, w_hi))
    added = 0
    attempts = 0
    while added < count and attempts < 20 * count + 20:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in present:
            continue
        add_both(u, v, _weight(rng, shortcut_lo, shortcut_hi))
        added += 1
    return g.freeze(rng)


def parse_edgelist(text: str) -> Tuple[int, List[Tuple[int, int, float]]]:
    """Parse edge-list text into ``(n, [(tail, head, weight), ...])``.

    One edge per line as ``tail head [weight]`` (whitespace- or
    comma-separated, weight defaults to 1.0); blank lines and ``#``
    comments are ignored.  ``n`` is ``max vertex id + 1``.

    Raises:
        GraphError: for malformed lines, negative ids, nonpositive
            weights, duplicate edges, self-loops, or an empty list —
            each naming the offending line number.
    """
    edges: List[Tuple[int, int, float]] = []
    seen = set()
    top = -1
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        if len(parts) not in (2, 3):
            raise GraphError(
                f"edgelist line {lineno}: expected 'tail head [weight]', "
                f"got {line!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError:
            raise GraphError(
                f"edgelist line {lineno}: expected 'tail head [weight]', "
                f"got {line!r}"
            )
        if u < 0 or v < 0:
            raise GraphError(
                f"edgelist line {lineno}: vertex ids must be >= 0"
            )
        if u == v:
            raise GraphError(
                f"edgelist line {lineno}: self-loop {u} -> {v}"
            )
        if w <= 0:
            raise GraphError(
                f"edgelist line {lineno}: weight must be positive, got {w}"
            )
        if (u, v) in seen:
            raise GraphError(
                f"edgelist line {lineno}: duplicate edge {u} -> {v}"
            )
        seen.add((u, v))
        edges.append((u, v, w))
        top = max(top, u, v)
    if not edges:
        raise GraphError("edgelist has no edges")
    return top + 1, edges


def snapshot_from_edgelist(
    source,
    rng: Optional[random.Random] = None,
) -> Digraph:
    """A frozen graph from an edge-list file or its text.

    ``source`` is a filesystem path (anything without a newline that
    names an existing file) or the edge-list text itself; the parsed
    graph must be strongly connected — snapshots exist to be routed on.

    Raises:
        GraphError: for unreadable files, malformed lines (see
            :func:`parse_edgelist`), or a snapshot that is not
            strongly connected.
    """
    text = str(source)
    if "\n" not in text:
        from pathlib import Path

        try:
            text = Path(text).read_text(encoding="utf-8")
        except OSError as exc:
            raise GraphError(f"cannot read edgelist file: {exc}")
    n, edges = parse_edgelist(text)
    g = Digraph(n)
    for (u, v, w) in edges:
        g.add_edge(u, v, w)
    g = g.freeze(rng or random.Random(0))
    comps = strongly_connected_components(g)
    if len(comps) != 1:
        raise GraphError(
            f"edgelist snapshot is not strongly connected "
            f"({len(comps)} components)"
        )
    return g


def bidirected_clique(
    n: int,
    rng: Optional[random.Random] = None,
    w_lo: float = 1.0,
    w_hi: float = 2.0,
) -> Digraph:
    """Complete bidirected graph (both directions of every pair).

    The doubled form used by Theorem 15's reduction; with near-uniform
    weights every pair is at roundtrip distance about ``w_lo + w_hi``
    and low-stretch routing cannot shortcut through landmarks.
    """
    rng = rng or random.Random(0)
    g = Digraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            w = _weight(rng, w_lo, w_hi)
            g.add_edge(u, v, w)
            g.add_edge(v, u, w)
    return g.freeze(rng)


def bidirected_hypercube(
    dim: int,
    rng: Optional[random.Random] = None,
) -> Digraph:
    """Bidirected ``dim``-dimensional hypercube with unit weights."""
    rng = rng or random.Random(0)
    n = 1 << dim
    g = Digraph(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                g.add_edge(u, v, 1.0)
                g.add_edge(v, u, 1.0)
    return g.freeze(rng)


def bidirect(g: Digraph, rng: Optional[random.Random] = None) -> Digraph:
    """Theorem 15's transform: replace each edge by both directions.

    For an input digraph, produces ``N'``: for every edge ``(u, v)`` of
    weight ``w``, both ``(u, v)`` and ``(v, u)`` of weight ``w`` exist
    in the output (if both directions already exist with different
    weights, the minimum is used so the result is symmetric).
    """
    rng = rng or random.Random(0)
    sym: Dict[Tuple[int, int], float] = {}
    for u in range(g.n):
        for (v, w) in g.out_neighbors(u):
            key = (min(u, v), max(u, v))
            sym[key] = min(w, sym.get(key, float("inf")))
    out = Digraph(g.n)
    for (u, v), w in sorted(sym.items()):
        out.add_edge(u, v, w)
        out.add_edge(v, u, w)
    return out.freeze(rng)


# ----------------------------------------------------------------------
# The standard benchmark suite
# ----------------------------------------------------------------------

GeneratorFn = Callable[[int, random.Random], Digraph]

#: Family names :func:`standard_families` builds, in registry order.
#: Kept as a plain tuple so spec validation (:mod:`repro.scenarios`)
#: can list the choices without eagerly generating nine graphs.
FAMILY_NAMES = (
    "random", "cycle", "torus", "asym-torus", "dht", "layered",
    "scale-free", "power-law", "grid-shortcuts",
)


def standard_families(n: int, seed: int = 0) -> Dict[str, Digraph]:
    """The benchmark suite: one representative graph per family at
    size about ``n`` (grid-like families round to the nearest shape).

    Returns:
        Mapping family name -> frozen digraph.
    """
    side = max(2, int(round(n ** 0.5)))
    layers = max(2, n // 8)
    return {
        "random": random_strongly_connected(n, rng=random.Random(seed)),
        "cycle": directed_cycle(n, rng=random.Random(seed + 1)),
        "torus": bidirected_torus(side, side, rng=random.Random(seed + 2)),
        "asym-torus": asymmetric_torus(side, side, rng=random.Random(seed + 3)),
        "dht": random_dht_overlay(n, rng=random.Random(seed + 4)),
        "layered": layered_random(layers, 8, rng=random.Random(seed + 5)),
        "scale-free": scale_free_directed(n, rng=random.Random(seed + 6)),
        "power-law": power_law_directed(n, rng=random.Random(seed + 7)),
        "grid-shortcuts": grid_with_shortcuts(
            side, side, rng=random.Random(seed + 8)
        ),
    }


def verify_generator_output(g: Digraph) -> None:
    """Assert generator invariants (strong connectivity, positive
    weights, frozen) — shared test helper."""
    assert g.frozen, "generators must return frozen graphs"
    assert g.min_weight() > 0, "weights must be positive"
    comps = strongly_connected_components(g)
    assert len(comps) == 1, f"expected strong connectivity, got {len(comps)} SCCs"
