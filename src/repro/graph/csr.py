"""Immutable CSR (compressed-sparse-row) adjacency for a digraph.

The pure-Python :class:`~repro.graph.digraph.Digraph` stores adjacency
as per-vertex lists of ``(head, weight)`` tuples — convenient for
construction and for the fixed-port forwarding interface, but hostile
to the numpy-batched relaxation kernels in :mod:`repro.graph.apsp`.
:class:`CSRGraph` snapshots that topology once into flat arrays:

* the *out* representation (``out_indptr``/``out_heads``/``out_weights``)
  lists every edge grouped by tail, and
* the *in* representation (``in_indptr``/``in_tails``/``in_weights``)
  lists every edge grouped by head, with ``in_targets`` giving the head
  vertex of each slot (the segment id, materialized for vectorized
  gathers).

All arrays are marked read-only so a :class:`CSRGraph` can be shared
freely between oracles, benchmarks, and analysis code.  The snapshot is
taken at construction time: mutating an unfrozen :class:`Digraph`
afterwards does not update the CSR view (the same contract the
distance oracle has always had).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.graph.digraph import Digraph
from repro.graph.limits import check_dense_table

# One snapshot per frozen graph: a frozen Digraph's topology can never
# change, so its CSR form is built once and shared (the key is weak so
# snapshots die with their graphs).
_SNAPSHOT_CACHE: "weakref.WeakKeyDictionary[Digraph, CSRGraph]" = (
    weakref.WeakKeyDictionary()
)

# Dense (n, n) weight matrices, one per snapshot (built on first use by
# the vectorized routing engine; dies with its snapshot).
_DENSE_WEIGHT_CACHE: "weakref.WeakKeyDictionary[CSRGraph, object]" = (
    weakref.WeakKeyDictionary()
)

# Sorted (tail * n + head) edge keys + aligned weights, one per
# snapshot: the O(m) sparse replacement for the dense weight matrix
# used by the vectorized engine's per-sweep cost charging.
_PAIR_LOOKUP_CACHE: "weakref.WeakKeyDictionary[CSRGraph, object]" = (
    weakref.WeakKeyDictionary()
)


class CSRGraph:
    """Read-only CSR snapshot of a :class:`Digraph`.

    Build via :meth:`from_digraph`; the constructor takes the raw
    arrays (already validated) and freezes them.

    Attributes:
        n: vertex count.
        m: directed edge count.
        out_indptr: ``(n + 1,)`` int64; out-edges of ``u`` occupy slots
            ``out_indptr[u]:out_indptr[u + 1]``.
        out_heads: ``(m,)`` int64 edge heads, grouped by tail.
        out_weights: ``(m,)`` float64 edge weights, aligned with
            ``out_heads``.
        in_indptr: ``(n + 1,)`` int64; in-edges of ``v`` occupy slots
            ``in_indptr[v]:in_indptr[v + 1]``.
        in_tails: ``(m,)`` int64 edge tails, grouped by head.
        in_weights: ``(m,)`` float64 edge weights, aligned with
            ``in_tails``.
        in_targets: ``(m,)`` int64; ``in_targets[e]`` is the head
            vertex owning in-slot ``e`` (i.e. ``v`` for every slot in
            ``in_indptr[v]:in_indptr[v + 1]``).
    """

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_heads",
        "out_weights",
        "in_indptr",
        "in_tails",
        "in_weights",
        "in_targets",
        "_source",
        "__weakref__",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_heads: np.ndarray,
        out_weights: np.ndarray,
        in_indptr: np.ndarray,
        in_tails: np.ndarray,
        in_weights: np.ndarray,
    ):
        self.n = n
        self.m = int(out_heads.shape[0])
        self.out_indptr = out_indptr
        self.out_heads = out_heads
        self.out_weights = out_weights
        self.in_indptr = in_indptr
        self.in_tails = in_tails
        self.in_weights = in_weights
        self.in_targets = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(in_indptr)
        )
        self._source: "weakref.ref[Digraph] | None" = None
        for name in (
            "out_indptr",
            "out_heads",
            "out_weights",
            "in_indptr",
            "in_tails",
            "in_weights",
            "in_targets",
        ):
            getattr(self, name).flags.writeable = False

    @classmethod
    def from_digraph(cls, g: Digraph) -> "CSRGraph":
        """Snapshot ``g``'s topology into CSR form.

        Works on frozen and unfrozen graphs alike (only the adjacency
        is read, never ports).  Frozen graphs are immutable, so their
        snapshot is built once and cached; unfrozen graphs get a fresh
        snapshot per call.
        """
        if g.frozen:
            cached = _SNAPSHOT_CACHE.get(g)
            if cached is None:
                cached = _SNAPSHOT_CACHE[g] = cls._build(g)
                cached._source = weakref.ref(g)
            return cached
        snap = cls._build(g)
        snap._source = weakref.ref(g)
        return snap

    @classmethod
    def _build(cls, g: Digraph) -> "CSRGraph":
        n = g.n
        out_deg = np.empty(n + 1, dtype=np.int64)
        out_deg[0] = 0
        in_deg = np.empty(n + 1, dtype=np.int64)
        in_deg[0] = 0
        for u in range(n):
            out_deg[u + 1] = g.out_degree(u)
            in_deg[u + 1] = g.in_degree(u)
        out_indptr = np.cumsum(out_deg)
        in_indptr = np.cumsum(in_deg)
        m = int(out_indptr[-1])
        out_heads = np.empty(m, dtype=np.int64)
        out_weights = np.empty(m, dtype=np.float64)
        in_tails = np.empty(m, dtype=np.int64)
        in_weights = np.empty(m, dtype=np.float64)
        for u in range(n):
            base = out_indptr[u]
            for i, (head, w) in enumerate(g.out_neighbors(u)):
                out_heads[base + i] = head
                out_weights[base + i] = w
            base = in_indptr[u]
            for i, (tail, w) in enumerate(g.in_neighbors(u)):
                in_tails[base + i] = tail
                in_weights[base + i] = w
        return cls(
            n, out_indptr, out_heads, out_weights,
            in_indptr, in_tails, in_weights,
        )

    # ------------------------------------------------------------------
    # topology mutation
    # ------------------------------------------------------------------
    @property
    def source(self) -> Digraph:
        """The :class:`Digraph` this snapshot was taken from.

        Raises:
            GraphError: when the snapshot was built directly from raw
                arrays, or its source graph has been garbage-collected.
        """
        from repro.exceptions import GraphError

        ref = self._source
        g = ref() if ref is not None else None
        if g is None:
            raise GraphError(
                "this CSRGraph has no live source Digraph; build the "
                "snapshot via CSRGraph.from_digraph and keep the graph "
                "alive to use apply_delta"
            )
        return g

    def apply_delta(self, delta) -> "CSRGraph":
        """Snapshot of the source graph with ``delta`` applied.

        Delegates to :meth:`Digraph.apply_delta` (ports live on the
        Digraph, and the delta's port-preservation rules are defined
        there) and returns the CSR snapshot of the resulting frozen
        graph.  Retrieve that graph via :attr:`source` on the result.
        """
        return CSRGraph.from_digraph(self.source.apply_delta(delta))

    # ------------------------------------------------------------------
    # convenience queries (primarily for tests and debugging)
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degree array (freshly allocated)."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degree array (freshly allocated)."""
        return np.diff(self.in_indptr)

    def out_edges(self, u: int):
        """``(heads, weights)`` views of ``u``'s out-edges."""
        lo, hi = int(self.out_indptr[u]), int(self.out_indptr[u + 1])
        return self.out_heads[lo:hi], self.out_weights[lo:hi]

    def in_edges(self, v: int):
        """``(tails, weights)`` views of ``v``'s in-edges."""
        lo, hi = int(self.in_indptr[v]), int(self.in_indptr[v + 1])
        return self.in_tails[lo:hi], self.in_weights[lo:hi]

    def min_weight(self) -> float:
        """Minimum edge weight (``inf`` for an edgeless graph)."""
        if self.m == 0:
            return float("inf")
        return float(self.out_weights.min())

    def dense_weights(self) -> np.ndarray:
        """The ``(n, n)`` dense weight matrix (``nan`` where no edge),
        built once per snapshot and shared read-only.

        Values are the exact float64 weights :meth:`Digraph.weight`
        returns.  Raises :class:`~repro.exceptions.TableTooLargeError`
        above the configured dense-table threshold instead of OOMing;
        use :meth:`pair_weights` for O(m)-memory lookups at any scale.
        """
        check_dense_table(self.n, "weight matrix")
        cached = _DENSE_WEIGHT_CACHE.get(self)
        if cached is None:
            w = np.full((self.n, self.n), np.nan, dtype=np.float64)
            tails = np.repeat(
                np.arange(self.n, dtype=np.int64), self.out_degrees()
            )
            w[tails, self.out_heads] = self.out_weights
            w.flags.writeable = False
            cached = _DENSE_WEIGHT_CACHE[self] = w
        return cached

    def pair_weights(self, tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
        """Weights of the ``(tails[i], heads[i])`` edges, ``nan`` where
        no such edge exists.

        Sparse counterpart of ``dense_weights()[tails, heads]``: edges
        are keyed as ``tail * n + head`` in a sorted int64 array built
        once per snapshot (O(m) memory), and queries resolve by binary
        search.  Values are the identical float64 objects, so swapping
        this in for the dense gather leaves batched cost accumulation
        bit-equal.
        """
        lookup = _PAIR_LOOKUP_CACHE.get(self)
        if lookup is None:
            edge_tails = np.repeat(
                np.arange(self.n, dtype=np.int64), self.out_degrees()
            )
            keys = edge_tails * np.int64(self.n) + self.out_heads
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = self.out_weights[order]
            keys.flags.writeable = False
            values.flags.writeable = False
            lookup = _PAIR_LOOKUP_CACHE[self] = (keys, values)
        keys, values = lookup
        queries = (
            np.asarray(tails, dtype=np.int64) * np.int64(self.n)
            + np.asarray(heads, dtype=np.int64)
        )
        if keys.shape[0] == 0:
            return np.full(queries.shape[0], np.nan, dtype=np.float64)
        pos = np.searchsorted(keys, queries)
        np.minimum(pos, keys.shape[0] - 1, out=pos)
        found = keys[pos] == queries
        return np.where(found, values[pos], np.nan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"
