"""Weighted directed graphs in the fixed-port model.

The paper's network model (Section 1.1) is a strongly connected directed
graph with positive real edge weights, where:

* node *names* are assigned by an adversary (handled in
  :mod:`repro.naming`), and
* each node's outgoing edges carry *port numbers* assigned by an
  adversary with no global consistency (Section 1.1.3, the *fixed-port*
  model).  A port number at ``u`` says nothing about the endpoint of the
  edge, and the same port number may appear at many nodes.

:class:`Digraph` stores the topology with internal vertex ids
``0..n-1``.  Those ids are *not* visible to routing schemes at packet
time; schemes may only place information derived from them into their
local tables during (centralized) preprocessing, exactly as the paper
allows.

Ports are modelled as small integers unique per node.  By default they
are assigned adversarially, i.e. drawn as a random permutation of an
arbitrary range so that no scheme can exploit their values; a
deterministic mode exists for debugging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.delta import (
    Arrival,
    Departure,
    GraphDelta,
    LinkDown,
    LinkUp,
    Reweight,
)


@dataclass(frozen=True)
class Edge:
    """A directed weighted edge with its fixed-port number at the tail.

    Attributes:
        tail: source vertex id.
        head: target vertex id.
        weight: positive edge weight.
        port: the port number of this edge in ``tail``'s local port
            space.  Following the fixed-port model, the value carries no
            topological meaning.
    """

    tail: int
    head: int
    weight: float
    port: int


class Digraph:
    """A weighted directed multigraph-free graph in the fixed-port model.

    The graph is immutable once frozen (see :meth:`freeze`); all routing
    substrates require a frozen graph so that cached structures (port
    maps, adjacency) remain valid.

    Args:
        n: number of vertices; vertices are ``0..n-1``.

    Example:
        >>> g = Digraph(3)
        >>> g.add_edge(0, 1, 1.0)
        >>> g.add_edge(1, 2, 2.0)
        >>> g.add_edge(2, 0, 1.5)
        >>> g.freeze()
        >>> g.out_degree(0)
        1
    """

    def __init__(self, n: int):
        if n <= 0:
            raise GraphError(f"graph must have at least one vertex, got n={n}")
        self._n = n
        # adjacency: per-vertex list of (head, weight); ports assigned at freeze
        self._succ: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self._pred: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self._edge_set: set[Tuple[int, int]] = set()
        self._frozen = False
        # assigned at freeze():
        self._ports: List[Dict[int, int]] = []        # vertex -> {head: port}
        self._port_to_head: List[Dict[int, int]] = [] # vertex -> {port: head}
        self._edges: List[Edge] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, tail: int, head: int, weight: float = 1.0) -> None:
        """Add a directed edge ``tail -> head`` with positive ``weight``."""
        if self._frozen:
            raise GraphError("cannot add edges to a frozen graph")
        self._check_vertex(tail)
        self._check_vertex(head)
        if tail == head:
            raise GraphError(f"self-loops are not allowed (vertex {tail})")
        if weight <= 0:
            raise GraphError(
                f"edge weights must be positive, got w({tail},{head})={weight}"
            )
        if (tail, head) in self._edge_set:
            raise GraphError(f"duplicate edge ({tail}, {head})")
        self._edge_set.add((tail, head))
        self._succ[tail].append((head, float(weight)))
        self._pred[head].append((tail, float(weight)))

    def freeze(self, port_rng: Optional[random.Random] = None) -> "Digraph":
        """Finalize the graph and assign fixed-port numbers.

        Args:
            port_rng: source of adversarial port randomness.  When given,
                each vertex's out-edges receive ports drawn as a random
                subset of an inflated range (so port values are
                meaningless, per Section 1.1.3).  When ``None``, vertex
                ``u``'s edges get ports ``0..outdeg(u)-1`` in insertion
                order (deterministic, for debugging).

        Returns:
            ``self``, for chaining.
        """
        if self._frozen:
            return self
        self._ports = [dict() for _ in range(self._n)]
        self._port_to_head = [dict() for _ in range(self._n)]
        self._edges = []
        for u in range(self._n):
            heads = [h for (h, _w) in self._succ[u]]
            deg = len(heads)
            if port_rng is None:
                port_values: Sequence[int] = range(deg)
            else:
                # Sample distinct meaningless port numbers from a range
                # about 4x the degree (the paper allows any O(n) port
                # namespace), then shuffle the edge order too.
                universe = max(4 * deg, 8)
                port_values = port_rng.sample(range(universe), deg)
            for (head, _w), port in zip(self._succ[u], port_values):
                self._ports[u][head] = port
                self._port_to_head[u][port] = head
        for u in range(self._n):
            for (head, w) in self._succ[u]:
                self._edges.append(Edge(u, head, w, self._ports[u][head]))
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return len(self._edge_set)

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (graph must be frozen)."""
        self._require_frozen()
        return iter(self._edges)

    def has_edge(self, tail: int, head: int) -> bool:
        """Return whether the directed edge ``tail -> head`` exists."""
        return (tail, head) in self._edge_set

    def out_neighbors(self, u: int) -> List[Tuple[int, float]]:
        """Return ``[(head, weight), ...]`` for ``u``'s out-edges."""
        self._check_vertex(u)
        return list(self._succ[u])

    def in_neighbors(self, u: int) -> List[Tuple[int, float]]:
        """Return ``[(tail, weight), ...]`` for ``u``'s in-edges."""
        self._check_vertex(u)
        return list(self._pred[u])

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        self._check_vertex(u)
        return len(self._succ[u])

    def in_degree(self, u: int) -> int:
        """Number of incoming edges of ``u``."""
        self._check_vertex(u)
        return len(self._pred[u])

    def weight(self, tail: int, head: int) -> float:
        """Return the weight of edge ``tail -> head``.

        Raises:
            GraphError: if the edge does not exist.
        """
        for (h, w) in self._succ[tail]:
            if h == head:
                return w
        raise GraphError(f"no edge ({tail}, {head})")

    # ------------------------------------------------------------------
    # fixed-port interface (what forwarding functions are allowed to use)
    # ------------------------------------------------------------------
    def port_of(self, tail: int, head: int) -> int:
        """Return the port number of edge ``tail -> head`` at ``tail``.

        This is a *preprocessing-time* helper: schemes call it while
        building tables.  At packet time only :meth:`head_of_port` style
        movement is available (via the simulator).
        """
        self._require_frozen()
        try:
            return self._ports[tail][head]
        except KeyError as exc:
            raise GraphError(f"no edge ({tail}, {head})") from exc

    def head_of_port(self, tail: int, port: int) -> int:
        """Return the head vertex of the edge leaving ``tail`` on ``port``.

        This is the operation the network itself performs when a node
        forwards a packet on a port.

        Raises:
            GraphError: if ``tail`` has no such port.
        """
        self._require_frozen()
        try:
            return self._port_to_head[tail][port]
        except KeyError as exc:
            raise GraphError(f"vertex {tail} has no port {port}") from exc

    def ports(self, u: int) -> List[int]:
        """Return all port numbers at vertex ``u``."""
        self._require_frozen()
        return sorted(self._port_to_head[u])

    # ------------------------------------------------------------------
    # port-preserving construction & mutation
    # ------------------------------------------------------------------
    @classmethod
    def from_port_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int, float, int]],
    ) -> "Digraph":
        """Build a *frozen* graph with explicit fixed-port assignments.

        This is the public port-preserving constructor: where
        :func:`from_edge_list` + :meth:`freeze` draw fresh (possibly
        adversarial) port numbers, this takes ``(tail, head, weight,
        port)`` quadruples — e.g. from :meth:`edges` of an existing
        frozen graph — and reproduces the given port assignment
        exactly.  It is what :meth:`apply_delta` and topology-copying
        transforms use so that forwarding state keyed by port numbers
        stays meaningful across the copy.

        Args:
            n: vertex count.
            edges: ``(tail, head, weight, port)`` quadruples.  The
                usual edge rules apply (no self-loops or duplicates,
                positive weights) plus port rules: non-negative and
                unique per tail.

        Returns:
            A frozen :class:`Digraph` with exactly the given ports.
        """
        g = cls(n)
        ports: List[Dict[int, int]] = [dict() for _ in range(n)]
        port_to_head: List[Dict[int, int]] = [dict() for _ in range(n)]
        for (tail, head, weight, port) in edges:
            g.add_edge(tail, head, weight)
            port = int(port)
            if port < 0:
                raise GraphError(
                    f"port numbers must be non-negative, got {port} at "
                    f"vertex {tail}"
                )
            if port in port_to_head[tail]:
                raise GraphError(f"duplicate port {port} at vertex {tail}")
            ports[tail][head] = port
            port_to_head[tail][port] = head
        g._ports = ports
        g._port_to_head = port_to_head
        g._edges = [
            Edge(u, head, w, ports[u][head])
            for u in range(n)
            for (head, w) in g._succ[u]
        ]
        g._frozen = True
        return g

    def apply_delta(self, delta: GraphDelta) -> "Digraph":
        """Fold a :class:`~repro.graph.delta.GraphDelta` into a new
        frozen graph; ``self`` is untouched.

        Ports are preserved for every surviving edge.  New edges
        (:class:`~repro.graph.delta.LinkUp`, arrival in-edges) receive
        the smallest port number their tail has free; an arriving
        node's own out-edges are ported ``0..k-1`` in the given order.
        A departure shifts vertex ids above the departed node down by
        one (ports untouched).

        Raises:
            GraphError: when an op is inconsistent with the graph it
                meets (missing/duplicate edge, vertex out of range,
                non-positive weight, departure emptying the graph).
        """
        self._require_frozen()
        if not isinstance(delta, GraphDelta):
            raise GraphError(
                f"expected a GraphDelta, got {type(delta).__name__}"
            )
        n = self._n
        # Working state: per-tail insertion-ordered {head: (weight, port)}.
        adj: List[Dict[int, Tuple[float, int]]] = [
            {head: (w, self._ports[u][head]) for (head, w) in self._succ[u]}
            for u in range(n)
        ]

        def check(u: int) -> None:
            if not (0 <= u < n):
                raise GraphError(
                    f"delta references vertex {u} out of range [0, {n})"
                )

        def insert(tail: int, head: int, weight: float) -> None:
            check(tail)
            check(head)
            if tail == head:
                raise GraphError(f"self-loops are not allowed (vertex {tail})")
            if head in adj[tail]:
                raise GraphError(f"link_up of existing edge ({tail}, {head})")
            if weight <= 0:
                raise GraphError(
                    f"edge weights must be positive, got "
                    f"w({tail},{head})={weight}"
                )
            used = {p for (_w, p) in adj[tail].values()}
            port = 0
            while port in used:
                port += 1
            adj[tail][head] = (float(weight), port)

        for op in delta.ops:
            if isinstance(op, Reweight):
                check(op.tail)
                check(op.head)
                if op.head not in adj[op.tail]:
                    raise GraphError(
                        f"reweight of missing edge ({op.tail}, {op.head})"
                    )
                if op.weight <= 0:
                    raise GraphError(
                        f"edge weights must be positive, got "
                        f"w({op.tail},{op.head})={op.weight}"
                    )
                _w, port = adj[op.tail][op.head]
                adj[op.tail][op.head] = (float(op.weight), port)
            elif isinstance(op, LinkDown):
                check(op.tail)
                check(op.head)
                if op.head not in adj[op.tail]:
                    raise GraphError(
                        f"link_down of missing edge ({op.tail}, {op.head})"
                    )
                del adj[op.tail][op.head]
            elif isinstance(op, LinkUp):
                insert(op.tail, op.head, op.weight)
            elif isinstance(op, Departure):
                if n <= 1:
                    raise GraphError("departure would leave an empty graph")
                x = op.node
                check(x)
                adj = [
                    {
                        (h - 1 if h > x else h): wp
                        for h, wp in adj[u].items()
                        if h != x
                    }
                    for u in range(n)
                    if u != x
                ]
                n -= 1
            else:  # Arrival
                new_id = n
                adj.append({})
                n += 1
                for (head, w) in op.out_edges:
                    insert(new_id, head, w)
                for (tail, w) in op.in_edges:
                    insert(tail, new_id, w)
        return Digraph.from_port_edges(
            n,
            (
                (u, head, w, port)
                for u in range(n)
                for head, (w, port) in adj[u].items()
            ),
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def reversed(self) -> "Digraph":
        """Return a new graph with every edge reversed (same weights).

        Useful for computing distances *into* a target via a forward
        Dijkstra on the reverse graph.
        """
        rg = Digraph(self._n)
        for u in range(self._n):
            for (head, w) in self._succ[u]:
                rg.add_edge(head, u, w)
        if self._frozen:
            rg.freeze()
        return rg

    def copy(self) -> "Digraph":
        """Return an unfrozen deep copy of the topology."""
        g = Digraph(self._n)
        for u in range(self._n):
            for (head, w) in self._succ[u]:
                g.add_edge(u, head, w)
        return g

    def max_weight(self) -> float:
        """Return the maximum edge weight (``W`` in the paper)."""
        return max(w for adj in self._succ for (_h, w) in adj)

    def min_weight(self) -> float:
        """Return the minimum edge weight."""
        return min(w for adj in self._succ for (_h, w) in adj)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise GraphError(f"vertex {u} out of range [0, {self._n})")

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise GraphError("operation requires a frozen graph; call freeze()")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self._frozen else "building"
        return f"Digraph(n={self._n}, m={self.m}, {state})"


def from_edge_list(
    n: int,
    edges: Iterable[Tuple[int, int, float]],
    port_rng: Optional[random.Random] = None,
) -> Digraph:
    """Build and freeze a :class:`Digraph` from an edge list.

    Args:
        n: vertex count.
        edges: iterable of ``(tail, head, weight)`` triples.
        port_rng: adversarial port randomness forwarded to
            :meth:`Digraph.freeze`.

    Returns:
        A frozen :class:`Digraph`.
    """
    g = Digraph(n)
    for (u, v, w) in edges:
        g.add_edge(u, v, w)
    return g.freeze(port_rng)
