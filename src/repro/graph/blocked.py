"""Source-blocked first-hop table construction.

The compiled routing engine's shortest-path tables answer "from ``s``,
which neighbor starts the canonical shortest path to ``v``?".  The
dense answer — :meth:`DistanceOracle.first_hop_matrix` — is one
``(n, n)`` int32 matrix, which caps the system around n ≈ few·10³.
This module provides the blocked alternative: the same rows, produced
one source block at a time from the streaming APSP generator
(:func:`repro.graph.apsp.apsp_blocks`), so peak memory during
construction is ``O(block_rows · n)`` and each finished block can be
persisted (and later mmap-rehydrated) independently.

Row ``s`` of a block is a pure function of source ``s``'s parent tree,
so concatenating blocks of *any* size — 1, ``n``, or anything that
does not divide ``n`` — reproduces the monolithic matrix bit-for-bit;
the hypothesis suite in ``tests/test_blocked_tables.py`` asserts this.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.graph.apsp import apsp_blocks
from repro.graph.csr import CSRGraph

#: Target entries per first-hop block: 1 << 22 int32 entries is 16 MiB,
#: small enough to stream on a laptop at n = 10^5 yet big enough that
#: per-block overhead (store round-trips, sweep dispatch) stays noise.
_BLOCK_ELEMS = 1 << 22


def default_block_rows(n: int) -> int:
    """Source rows per block so one block holds ~:data:`_BLOCK_ELEMS`
    entries (always at least 1, at most ``n``)."""
    return max(1, min(max(n, 1), _BLOCK_ELEMS // max(n, 1)))


def first_hops_from_parents(parent_rows: np.ndarray, lo: int) -> np.ndarray:
    """First-hop rows for sources ``lo:lo + b`` from their parent trees.

    Args:
        parent_rows: ``(b, n)`` canonical tree parents (``parent[i, v]``
            is ``v``'s parent in the tree rooted at source ``lo + i``;
            ``-1`` for the source and unreachable vertices).
        lo: the first source id covered by the rows.

    Returns:
        ``(b, n)`` int32 with entry ``[i, v]`` the first hop on the
        canonical path ``lo + i -> v`` (``-1`` on the diagonal and for
        unreachable targets) — the same pointer-doubling fold
        :meth:`DistanceOracle.first_hop_matrix` runs on the full
        matrix, restricted to these rows (each row is self-contained,
        so the restriction is exact).
    """
    b = np.asarray(parent_rows).shape[0]
    return first_hops_for_sources(
        parent_rows, np.arange(lo, lo + b, dtype=np.int32)
    )


def first_hops_for_sources(
    parent_rows: np.ndarray, sources: np.ndarray
) -> np.ndarray:
    """First-hop rows for an *arbitrary* ordered source set.

    The scattered-source sibling of :func:`first_hops_from_parents`
    (which it implements): row ``i`` of the result is the first-hop
    row of source ``sources[i]``, folded from ``parent_rows[i]`` by
    the identical pointer-doubling recursion — each row is a pure
    function of its own tree, so the scattered restriction is exact.
    The incremental repair protocol (:mod:`repro.graph.repair`) uses
    this to refresh only the first-hop rows a delta invalidated.
    """
    parent = np.asarray(parent_rows, dtype=np.int32)
    b, n = parent.shape
    src = np.asarray(sources, dtype=np.int32).reshape(-1)
    cols = np.broadcast_to(np.arange(n, dtype=np.int32), (b, n))
    # a vertex whose parent is the source is its own first hop; others
    # inherit their parent's answer by pointer doubling
    first = np.where(parent == src[:, None], cols, -1).astype(np.int32)
    jump = np.where(parent >= 0, parent, cols)
    while True:
        hop = np.take_along_axis(first, jump, axis=1)
        progressed = (first < 0) & (hop >= 0)
        if not progressed.any():
            break
        first = np.where(progressed, hop, first)
        jump = np.take_along_axis(jump, jump, axis=1)
    first[np.arange(b), src] = -1
    return first


def iter_first_hop_blocks(
    csr: CSRGraph, block_rows: Optional[int] = None
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Stream ``(lo, hi, first_hop_rows)`` blocks for every source.

    Runs the source-blocked APSP and folds each block's parents into
    first-hop rows without ever holding an ``(n, n)`` matrix; peak
    memory is proportional to ``block_rows * n``.  Concatenating the
    yielded blocks equals ``DistanceOracle.first_hop_matrix()``
    bit-for-bit for any ``block_rows``.
    """
    for lo, hi, _d, parent in apsp_blocks(csr, block_rows=block_rows):
        yield lo, hi, first_hops_from_parents(parent, lo)
