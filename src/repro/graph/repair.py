"""Incremental repair of canonical APSP state under graph deltas.

A :class:`~repro.graph.delta.GraphDelta` usually invalidates only a
small fraction of the all-pairs solution.  This module repairs a
``(d, parent)`` pair in place of a full rebuild by exploiting two
structural facts about the canonical APSP engine
(:mod:`repro.graph.apsp`):

* **Per-source row independence.**  Row ``s`` of the solution depends
  only on the graph and on ``s``; rows can be recomputed individually
  (:func:`~repro.graph.apsp.apsp_rows`) with the identical warm start
  + canonical sweep kernel the full build uses.
* **Unique fixpoint.**  Any distance row unchanged by one canonical
  sweep *is* the canonical solution for its source (see the
  :mod:`repro.graph.apsp` docstring).  So if we can certify that an
  op leaves row ``s`` a fixpoint of the *new* graph's sweep, the old
  row equals the new canonical row — floats and parents both — with
  no computation at all.

Per op, a superset of the rows the op can affect is read off the
current solution (the certificates below); those rows are recomputed
exactly, the rest are carried over verbatim.  The result is therefore
**bit-identical** to a full rebuild — the property the churn
differential suite (``tests/test_churn.py``) locks for every compiled
scheme and table family.

Affected-row certificates (op on edge ``u -> v``, tie tolerance
``TIE_EPS``; sources whose row might change):

* ``Reweight(u, v, w)`` — ``parent[s][v] == u`` (the edge is in
  ``s``'s tree, so its cost flows into the row) **or**
  ``d[s][u] + w <= d[s][v] + TIE_EPS`` (the re-priced edge reaches
  ``v``'s tie window and can win it).
* ``LinkDown(u, v)`` — ``parent[s][v] == u``.  A non-tree edge's
  removal deletes a candidate that neither defines ``d[s][v]`` nor
  wins the window; the row stays a fixpoint.
* ``LinkUp(u, v, w)`` — ``d[s][u] + w <= d[s][v] + TIE_EPS``.  A new
  candidate strictly above the window changes nothing.

These certificates are exact in the regime the vectorized engine
already requires (:func:`~repro.graph.apsp.vectorized_engine_supported`:
edge weights, hence distinct path-length groups, separated by far
more than ``TIE_EPS``).  Ops apply *sequentially* through intermediate
graphs — each step is exact, so the composition is exact.

Node :class:`~repro.graph.delta.Arrival`/:class:`~repro.graph.delta.Departure`
ops renumber rows and columns; the repair protocol does not cover
them, and :func:`repair_apsp` returns ``None`` so the caller falls
back to a keyed full rebuild (:meth:`repro.api.network.Network.evolve`
does exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.apsp import TIE_EPS, apsp_rows, vectorized_engine_supported
from repro.graph.blocked import first_hops_for_sources
from repro.graph.csr import CSRGraph
from repro.graph.delta import (
    DeltaOp,
    GraphDelta,
    LinkDown,
    LinkUp,
    Reweight,
)
from repro.graph.digraph import Digraph
from repro.graph.shortest_paths import DistanceOracle


@dataclass
class RepairReport:
    """Accounting for one repair (or one fallback rebuild).

    Attributes:
        ops: delta ops processed.
        rows_recomputed: source rows recomputed, summed over ops (a row
            touched by two ops counts twice — it was recomputed twice).
        rows_reused: source rows certified unchanged, summed over ops.
        entries_changed: distance entries whose float value actually
            changed across the whole repair.
        full_rebuild: ``True`` when the repair protocol did not apply
            and the caller rebuilt from scratch.
        seconds: wall-clock spent repairing.
    """

    ops: int = 0
    rows_recomputed: int = 0
    rows_reused: int = 0
    entries_changed: int = 0
    full_rebuild: bool = False
    seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (stats/JSON surfaces)."""
        return {
            "ops": self.ops,
            "rows_recomputed": self.rows_recomputed,
            "rows_reused": self.rows_reused,
            "entries_changed": self.entries_changed,
            "full_rebuild": self.full_rebuild,
            "seconds": self.seconds,
        }


@dataclass
class RepairedAPSP:
    """Result of :func:`repair_apsp`.

    Attributes:
        graph: the new frozen graph (delta applied).
        d: ``(n, n)`` repaired distance matrix.
        parent: ``(n, n)`` repaired canonical parent matrix.
        touched: sorted unique source rows recomputed at least once —
            exactly the rows whose derived per-row artifacts (first-hop
            rows, tree addresses) may differ from the predecessor's.
        report: the accounting.
    """

    graph: Digraph
    d: np.ndarray
    parent: np.ndarray
    touched: np.ndarray
    report: RepairReport = field(default_factory=RepairReport)


def delta_supports_repair(delta: GraphDelta) -> bool:
    """Whether every op is in the repair protocol's regime (same-``n``:
    reweights and link up/down; arrivals/departures renumber vertices
    and force a rebuild)."""
    return delta.same_n


def affected_sources(
    d: np.ndarray, parent: np.ndarray, op: DeltaOp
) -> np.ndarray:
    """The certificate: indices of every source row ``op`` can affect,
    read off the current ``(d, parent)`` solution (see the module
    docstring for why the complement provably keeps its rows)."""
    if isinstance(op, Reweight):
        mask = (parent[:, op.head] == op.tail) | (
            d[:, op.tail] + op.weight <= d[:, op.head] + TIE_EPS
        )
    elif isinstance(op, LinkDown):
        mask = parent[:, op.head] == op.tail
    elif isinstance(op, LinkUp):
        mask = d[:, op.tail] + op.weight <= d[:, op.head] + TIE_EPS
    else:
        raise ValueError(f"op {op!r} is outside the repair protocol")
    return np.flatnonzero(mask)


def repair_apsp(
    graph: Digraph,
    d: np.ndarray,
    parent: np.ndarray,
    delta: GraphDelta,
) -> Optional[RepairedAPSP]:
    """Repair an all-pairs solution across ``delta``, or signal rebuild.

    Args:
        graph: the frozen graph ``(d, parent)`` solves.
        d: its ``(n, n)`` canonical distance matrix.
        parent: its ``(n, n)`` canonical parent matrix.
        delta: the mutation to fold in.

    Returns:
        A :class:`RepairedAPSP` whose matrices are bit-identical to a
        full rebuild on the new graph — or ``None`` when the protocol
        does not apply (node arrival/departure ops, or an intermediate
        graph outside the vectorized engine's safe-weight regime) and
        the caller should rebuild from scratch.
    """
    t0 = time.perf_counter()
    if not delta_supports_repair(delta):
        return None
    n = graph.n
    d = np.array(d, dtype=np.float64)
    parent = np.array(parent, dtype=np.int64)
    report = RepairReport(ops=len(delta.ops))
    touched_mask = np.zeros(n, dtype=bool)
    g = graph
    for op in delta.ops:
        g = g.apply_delta(GraphDelta((op,)))
        csr = CSRGraph.from_digraph(g)
        if not vectorized_engine_supported(csr):
            return None
        rows = affected_sources(d, parent, op)
        report.rows_recomputed += int(rows.size)
        report.rows_reused += n - int(rows.size)
        if rows.size:
            nd, npar = apsp_rows(csr, rows)
            report.entries_changed += int(np.count_nonzero(nd != d[rows]))
            d[rows] = nd
            parent[rows] = npar
            touched_mask[rows] = True
    report.seconds = time.perf_counter() - t0
    return RepairedAPSP(
        graph=g,
        d=d,
        parent=parent,
        touched=np.flatnonzero(touched_mask),
        report=report,
    )


def repair_oracle(
    oracle: DistanceOracle, delta: GraphDelta
) -> Optional[Tuple[DistanceOracle, RepairedAPSP]]:
    """Repair a :class:`~repro.graph.shortest_paths.DistanceOracle`
    across ``delta``.

    On success, returns the successor oracle (rehydrated via
    :meth:`DistanceOracle.from_arrays` on the new graph, so it is
    indistinguishable from a cold build) plus the repair record.  When
    the predecessor has a memoized dense first-hop matrix, the
    successor's is patched row-wise too — only the ``touched`` rows are
    re-folded (:func:`~repro.graph.blocked.first_hops_for_sources`);
    untouched rows have identical parent rows, so their first-hop rows
    are identical by construction.

    Returns ``None`` when the repair protocol does not apply *or* the
    repaired graph is not strongly connected — in both cases the
    caller falls back to the ordinary keyed (re)build path, which
    reports such graphs through its usual errors.
    """
    result = repair_apsp(
        oracle.graph, oracle.d_matrix, oracle.parent_matrix(), delta
    )
    if result is None or np.isinf(result.d).any():
        return None
    new_oracle = DistanceOracle.from_arrays(
        result.graph, result.d, result.parent, engine=oracle.engine
    )
    old_first = oracle.cached_first_hops()
    if old_first is not None and result.touched.size:
        first = old_first.copy()
        first[result.touched] = first_hops_for_sources(
            result.parent[result.touched], result.touched
        )
        new_oracle.seed_first_hops(first)
    elif old_first is not None:
        new_oracle.seed_first_hops(old_first)
    return new_oracle, result


def rebuild_report(delta: GraphDelta, n: int, seconds: float) -> RepairReport:
    """The accounting record for a keyed full rebuild (the fallback
    path): every row recomputed, none reused."""
    return RepairReport(
        ops=len(delta.ops),
        rows_recomputed=n,
        rows_reused=0,
        entries_changed=0,
        full_rebuild=True,
        seconds=seconds,
    )


__all__: List[str] = [
    "RepairReport",
    "RepairedAPSP",
    "affected_sources",
    "delta_supports_repair",
    "repair_apsp",
    "repair_oracle",
    "rebuild_report",
]
