"""Topology mutation as a value: :class:`GraphDelta` and its ops.

The paper's Section 6 names dynamic maintenance as *the* open problem —
the whole point of the TINN model is that names survive topology
change.  This module makes a topology change a first-class value
instead of a one-off graph copy: a :class:`GraphDelta` is an ordered
sequence of mutation ops —

* :class:`Reweight` — one edge's weight replaced;
* :class:`LinkDown` / :class:`LinkUp` — one edge removed / added;
* :class:`Departure` — one node (and its incident edges) removed,
  vertex ids above it shifting down by one;
* :class:`Arrival` — one node appended (id ``n``) with explicit
  out/in edges —

that :meth:`repro.graph.digraph.Digraph.apply_delta` folds into a new
frozen graph, preserving the fixed-port numbers of every surviving
edge (so forwarding state that stores ports keeps meaning across the
change).  Deltas round-trip through plain JSON documents
(:meth:`GraphDelta.to_doc` / :meth:`GraphDelta.from_doc`), which is
the wire form ``POST /reload`` and the ``traffic --events`` timeline
files speak.

Ops apply *in order*: vertex ids in later ops refer to the graph as
mutated by the earlier ones (after a :class:`Departure` of ``x``, ids
above ``x`` have already shifted down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import GraphError


@dataclass(frozen=True)
class Reweight:
    """Replace edge ``tail -> head``'s weight with ``weight``."""

    tail: int
    head: int
    weight: float


@dataclass(frozen=True)
class LinkDown:
    """Remove the edge ``tail -> head`` (its port is freed)."""

    tail: int
    head: int


@dataclass(frozen=True)
class LinkUp:
    """Add the edge ``tail -> head`` with ``weight``; it receives the
    smallest port number not in use at ``tail``."""

    tail: int
    head: int
    weight: float


@dataclass(frozen=True)
class Departure:
    """Remove vertex ``node`` and every incident edge; ids above
    ``node`` shift down by one (surviving ports are untouched)."""

    node: int


@dataclass(frozen=True)
class Arrival:
    """Append one vertex (it receives id ``n``) with explicit edges.

    Attributes:
        out_edges: ``((head, weight), ...)`` — the new node's out-edges,
            ported ``0..k-1`` in the given order.
        in_edges: ``((tail, weight), ...)`` — edges into the new node;
            each tail assigns the smallest port it has free.
    """

    out_edges: Tuple[Tuple[int, float], ...]
    in_edges: Tuple[Tuple[int, float], ...]


#: Every delta op type, in documentation order.
DeltaOp = Union[Reweight, LinkDown, LinkUp, Departure, Arrival]

#: JSON ``op`` tags, aligned with the op dataclasses.
OP_NAMES = ("reweight", "link_down", "link_up", "departure", "arrival")


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise GraphError(msg)


def _edge_pairs(doc: Any, what: str) -> Tuple[Tuple[int, float], ...]:
    _require(isinstance(doc, (list, tuple)), f"{what} must be a list")
    out: List[Tuple[int, float]] = []
    for item in doc:
        _require(
            isinstance(item, (list, tuple)) and len(item) == 2,
            f"{what} entries must be [vertex, weight] pairs",
        )
        out.append((int(item[0]), float(item[1])))
    return tuple(out)


@dataclass(frozen=True)
class GraphDelta:
    """An ordered, immutable sequence of topology mutation ops.

    Construct directly from op values, via the convenience
    constructors (:meth:`reweight`, :meth:`link_down`, ...), or from a
    JSON document (:meth:`from_doc`).
    """

    ops: Tuple[DeltaOp, ...]

    def __post_init__(self) -> None:
        _require(len(self.ops) > 0, "a GraphDelta needs at least one op")
        for op in self.ops:
            _require(
                isinstance(op, (Reweight, LinkDown, LinkUp, Departure, Arrival)),
                f"unknown delta op {op!r}",
            )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def reweight(cls, tail: int, head: int, weight: float) -> "GraphDelta":
        """A single-op reweight delta."""
        return cls((Reweight(int(tail), int(head), float(weight)),))

    @classmethod
    def link_down(cls, tail: int, head: int) -> "GraphDelta":
        """A single-op edge-removal delta."""
        return cls((LinkDown(int(tail), int(head)),))

    @classmethod
    def link_up(cls, tail: int, head: int, weight: float) -> "GraphDelta":
        """A single-op edge-addition delta."""
        return cls((LinkUp(int(tail), int(head), float(weight)),))

    @classmethod
    def departure(cls, node: int) -> "GraphDelta":
        """A single-op node-removal delta."""
        return cls((Departure(int(node)),))

    @classmethod
    def arrival(cls, out_edges, in_edges) -> "GraphDelta":
        """A single-op node-arrival delta."""
        return cls((
            Arrival(
                tuple((int(h), float(w)) for h, w in out_edges),
                tuple((int(t), float(w)) for t, w in in_edges),
            ),
        ))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def same_n(self) -> bool:
        """Whether the delta preserves the vertex count (no arrivals or
        departures) — the regime the incremental APSP repair protocol
        (:mod:`repro.graph.repair`) supports."""
        return not any(
            isinstance(op, (Departure, Arrival)) for op in self.ops
        )

    def op_names(self) -> List[str]:
        """The JSON tag of each op, in order (accounting labels)."""
        tags = {
            Reweight: "reweight", LinkDown: "link_down", LinkUp: "link_up",
            Departure: "departure", Arrival: "arrival",
        }
        return [tags[type(op)] for op in self.ops]

    # ------------------------------------------------------------------
    # JSON round-trip (the /reload and --events wire form)
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """The plain-JSON document form: ``{"ops": [{"op": ...}, ...]}``."""
        docs: List[Dict[str, Any]] = []
        for op in self.ops:
            if isinstance(op, Reweight):
                docs.append({
                    "op": "reweight", "tail": op.tail, "head": op.head,
                    "weight": op.weight,
                })
            elif isinstance(op, LinkDown):
                docs.append({"op": "link_down", "tail": op.tail, "head": op.head})
            elif isinstance(op, LinkUp):
                docs.append({
                    "op": "link_up", "tail": op.tail, "head": op.head,
                    "weight": op.weight,
                })
            elif isinstance(op, Departure):
                docs.append({"op": "departure", "node": op.node})
            else:
                docs.append({
                    "op": "arrival",
                    "out": [[h, w] for h, w in op.out_edges],
                    "in": [[t, w] for t, w in op.in_edges],
                })
        return {"ops": docs}

    @classmethod
    def from_doc(cls, doc: Any) -> "GraphDelta":
        """Parse the document form back into a :class:`GraphDelta`.

        Raises:
            GraphError: for a malformed document (wrong shapes, unknown
                op tags, missing fields).
        """
        _require(isinstance(doc, dict), "delta document must be an object")
        op_docs = doc.get("ops")
        _require(isinstance(op_docs, list), "delta document needs an 'ops' list")
        ops: List[DeltaOp] = []
        for od in op_docs:
            _require(isinstance(od, dict), "each delta op must be an object")
            tag = od.get("op")
            try:
                if tag == "reweight":
                    ops.append(Reweight(
                        int(od["tail"]), int(od["head"]), float(od["weight"])
                    ))
                elif tag == "link_down":
                    ops.append(LinkDown(int(od["tail"]), int(od["head"])))
                elif tag == "link_up":
                    ops.append(LinkUp(
                        int(od["tail"]), int(od["head"]), float(od["weight"])
                    ))
                elif tag == "departure":
                    ops.append(Departure(int(od["node"])))
                elif tag == "arrival":
                    ops.append(Arrival(
                        _edge_pairs(od.get("out", []), "arrival 'out'"),
                        _edge_pairs(od.get("in", []), "arrival 'in'"),
                    ))
                else:
                    raise GraphError(
                        f"unknown delta op {tag!r}; expected one of {OP_NAMES}"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                raise GraphError(f"malformed {tag!r} delta op: {od!r}") from exc
        return cls(tuple(ops))

    def __len__(self) -> int:
        return len(self.ops)
