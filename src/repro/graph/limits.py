"""Size limits for dense ``(n, n)`` table materialization.

The paper's whole point is sublinear-*space* routing, so the library
refuses to silently allocate quadratic tables past a threshold: at
n = 10^5 a single float64 ``(n, n)`` matrix is 80 GB.  Callers that
really want a dense table on a big-memory host can raise the threshold
via the ``REPRO_DENSE_MAX_N`` environment variable; everyone else is
steered to the blocked/landmark table family, which streams per-source
blocks and keeps peak memory proportional to ``block_rows * n``.
"""

from __future__ import annotations

import os

from repro.exceptions import TableTooLargeError

#: Environment variable overriding the dense-table vertex-count ceiling.
DENSE_MAX_N_ENV = "REPRO_DENSE_MAX_N"

#: Default ceiling: a 4096-vertex dense float64 matrix is 128 MiB —
#: roomy enough for every test/bench workload, far below OOM territory.
DEFAULT_DENSE_MAX_N = 4096


def dense_table_max_n() -> int:
    """Largest ``n`` for which dense ``(n, n)`` tables may be built.

    Read from ``REPRO_DENSE_MAX_N`` on every call (cheap, and lets tests
    flip the threshold with ``monkeypatch.setenv``); malformed or
    non-positive values fall back to :data:`DEFAULT_DENSE_MAX_N`.
    """
    raw = os.environ.get(DENSE_MAX_N_ENV)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_DENSE_MAX_N
        if value > 0:
            return value
    return DEFAULT_DENSE_MAX_N


def check_dense_table(n: int, what: str) -> None:
    """Raise :class:`TableTooLargeError` if an ``(n, n)`` ``what`` would
    exceed the configured threshold."""
    limit = dense_table_max_n()
    if n > limit:
        raise TableTooLargeError(
            f"refusing to materialize dense {what} at n={n}: the "
            f"(n, n) table exceeds the dense limit of {limit} vertices "
            f"(~{n * n * 8 / 2**20:.0f} MiB at float64). Use the "
            f"blocked table family (--tables blocked) or raise "
            f"{DENSE_MAX_N_ENV} if the memory is really available."
        )
