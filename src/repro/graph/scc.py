"""Strong-connectivity utilities.

All of the paper's schemes require the input digraph to be strongly
connected (otherwise roundtrip distances are infinite).  This module
provides an iterative Tarjan SCC decomposition, a strong-connectivity
check, and a repair helper used by the random-graph generators to
guarantee strong connectivity without distorting degree distributions
too much.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import NotStronglyConnectedError
from repro.graph.digraph import Digraph


def strongly_connected_components(g: Digraph) -> List[List[int]]:
    """Compute the strongly connected components of ``g``.

    Uses an iterative Tarjan's algorithm (no recursion, so it is safe on
    deep graphs such as long cycles).

    Returns:
        A list of components, each a list of vertex ids.  Components are
        emitted in reverse topological order of the condensation.
    """
    n = g.n
    index_counter = 0
    stack: List[int] = []
    lowlink = [-1] * n
    index = [-1] * n
    on_stack = [False] * n
    result: List[List[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work item is (vertex, iterator position into successors).
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = index_counter
                lowlink[v] = index_counter
                index_counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            succ = g.out_neighbors(v)
            while pi < len(succ):
                w = succ[pi][0]
                pi += 1
                if index[w] == -1:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            # v is finished
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                result.append(component)
    return result


def is_strongly_connected(g: Digraph) -> bool:
    """Return whether ``g`` is strongly connected."""
    if g.n == 1:
        return True
    return len(strongly_connected_components(g)) == 1


def require_strongly_connected(g: Digraph) -> None:
    """Raise :class:`NotStronglyConnectedError` unless ``g`` is strongly
    connected."""
    if not is_strongly_connected(g):
        comps = strongly_connected_components(g)
        raise NotStronglyConnectedError(
            f"graph has {len(comps)} strongly connected components; "
            "the paper's schemes require exactly one"
        )


def condensation_order(g: Digraph) -> List[int]:
    """Return a vertex -> component-index map.

    Component indices follow the reverse topological order produced by
    :func:`strongly_connected_components`.
    """
    comp = [-1] * g.n
    for ci, members in enumerate(strongly_connected_components(g)):
        for v in members:
            comp[v] = ci
    return comp
