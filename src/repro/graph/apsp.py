"""Vectorized all-pairs shortest paths over a CSR adjacency.

The paper's centralized preprocessing is dominated by an all-pairs
shortest-path computation (Section 6).  The classic realization — one
heap Dijkstra per source — spends all its time in the Python
interpreter.  This module instead runs a *batched* relaxation: all
``n`` sources are carried as rows of one ``(n, n)`` distance matrix
and each sweep relaxes every in-edge of every vertex for every source
at once (a multi-source Bellman-Ford, in the spirit of Δ-stepping's
bucket-wide relaxations).  Two ingredients make it fast:

* **Warm start.**  The plain minimum distance matrix is computed first
  (via :mod:`scipy.sparse.csgraph` when available, else with the same
  batched kernels in min-only mode).  Canonical relaxation then
  converges in one or two sweeps instead of graph-diameter sweeps.
* **Degree-class kernels.**  Vertices are grouped by in-degree, so
  each sweep is a handful of dense ``(sources, vertices, degree)``
  numpy reductions with no per-vertex Python work and no ragged
  segment reductions.

Canonical tie-breaking
----------------------

:func:`repro.graph.shortest_paths.dijkstra` breaks ties so that when
two shortest paths to ``v`` have equal length (within
:data:`TIE_EPS`), the one whose *predecessor has the smaller vertex
id* wins; the resulting trees are canonical and the cluster-closure
property of the RTZ substrate depends on them.  The batched engine
reproduces this bit-for-bit with a windowed argmin per
(source, vertex):

1. ``best`` is the minimum over in-edge candidates ``d[s, u] + w(u, v)``;
2. the *window* is every candidate within ``TIE_EPS`` of ``best``;
3. the parent is the smallest ``u`` in the window, and ``d[s, v]``
   becomes *that parent's* candidate value — the same float the
   sequential fold stores when the winning predecessor relaxes ``v``.

Because edge weights are required to be much larger than ``TIE_EPS``
(see :func:`vectorized_engine_supported`), a predecessor at
equal-or-greater distance can never enter the window.  That makes the
sweep's fixpoint independent of relaxation order: any distance matrix
whose rows are unchanged by one sweep has acyclic parent chains (a
parent is always strictly closer to the source), so every finite entry
is a true path sum, and induction over distance rank shows the
fixpoint equals the sequential Dijkstra fold exactly — floats and
parents both.  The differential suite in ``tests/test_csr_apsp.py``
asserts this equality across every standard graph family.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import CSRGraph

try:  # scipy is optional: used only to accelerate the warm start
    from scipy.sparse import csr_matrix as _sp_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover - exercised where scipy is absent
    _sp_csr_matrix = None
    _sp_dijkstra = None

#: Absolute tolerance under which two path lengths count as tied.
#: Shared with the sequential Dijkstra so both engines canonicalize
#: identically.
TIE_EPS = 1e-12

#: Smallest edge weight the vectorized engine accepts: weights must
#: dominate the tie tolerance for the windowed argmin to be exact.
MIN_SAFE_WEIGHT = 1e3 * TIE_EPS

#: Soft cap on elements per temporary ``(sources, vertices, degree)``
#: tensor; sources are processed in chunks so memory stays bounded.
_CHUNK_ELEMS = 4_000_000

#: Up to this vertex count each degree class also carries a dense
#: ``(n + 1, |class|)`` weight lookup, letting the sweep fetch the
#: winning parent's edge weight with one small gather instead of a
#: full-tensor reduction (the ``+1`` row is an all-inf sentinel for
#: "no parent").  Beyond it the lookup's quadratic memory stops paying.
_DENSE_W_MAX_N = 1024

#: Scratch buffers up to this many bytes stay cached on the degree
#: classes between engine runs (repeat builds on the same graph skip
#: the allocator's mmap + page-fault path); larger scratch is
#: released when :func:`apsp_matrices` returns so big graphs don't
#: pin tens of MiB of dead temporaries.
_SCRATCH_KEEP_BYTES = 8_000_000


def vectorized_engine_supported(csr: CSRGraph) -> bool:
    """Whether the batched engine's tie-break is exact for this graph.

    Two conditions: all edge weights must dominate the absolute tie
    tolerance :data:`TIE_EPS`, and they must also dominate the float
    spacing (ulp) at the largest possible path-distance magnitude —
    otherwise rounding at huge distance scales can move genuinely
    distinct path lengths into (or out of) the tie window differently
    than the sequential fold does.  ``n * max_weight`` bounds any
    simple-path distance.
    """
    if csr.m == 0:
        return True
    min_w = csr.min_weight()
    ulp_at_scale = float(np.spacing(csr.n * float(csr.out_weights.max())))
    return min_w > max(MIN_SAFE_WEIGHT, 1e3 * ulp_at_scale)


# Degree classes are derived purely from the (immutable) CSR arrays,
# so they too are built once per snapshot.
_CLASS_CACHE: "weakref.WeakKeyDictionary[CSRGraph, _DegreeClasses]" = (
    weakref.WeakKeyDictionary()
)


def _degree_classes(csr: CSRGraph) -> "_DegreeClasses":
    classes = _CLASS_CACHE.get(csr)
    if classes is None:
        classes = _CLASS_CACHE[csr] = _DegreeClasses(csr)
    return classes


class _DegreeClasses:
    """In-edges regrouped into dense per-degree-class tensors.

    Each class ``c`` covers the vertices sharing one in-degree; their
    in-edge tails/weights form rectangular ``(degree, |c|)`` blocks
    (degree-major, so sweep reductions run over axis 1 of a
    ``(sources, degree, |c|)`` tensor — contiguous ``(sources, |c|)``
    planes that numpy reduces with full SIMD, instead of
    strided-per-element reductions over a tiny trailing axis).  Real
    graph families have few distinct in-degrees, so the per-class
    dispatch overhead stays negligible.
    """

    __slots__ = (
        "verts", "tails", "tail_ids", "weights", "w_dense",
        "_scratch_rows", "_scratch", "_sp_matrix",
    )

    def __init__(self, csr: CSRGraph):
        n = csr.n
        indeg = csr.in_degrees()
        # scratch buffers for the sweep's large intermediates, built
        # lazily per block height (see scratch_for)
        self._scratch_rows = -1
        self._scratch: List[Tuple[np.ndarray, ...]] = []
        # lazily-built scipy matrix for the warm start (None until
        # first use; stays None when scipy is absent)
        self._sp_matrix = None
        # vertices with no in-edges are skipped; they can only ever be
        # sources
        self.verts: List[np.ndarray] = []
        # (degree, |c|) blocks: int64 for gathers, int32 for id math
        self.tails: List[np.ndarray] = []
        self.tail_ids: List[np.ndarray] = []
        self.weights: List[np.ndarray] = []
        # dense (n + 1, n) weight lookup: w_dense[u, v] is the weight
        # of edge u -> v (inf when absent; row n is the "no parent"
        # sentinel), letting the sweep fetch every winner's edge
        # weight in one flat gather; None above the size gate
        self.w_dense: Optional[np.ndarray] = None
        if csr.m == 0:
            return
        if n <= _DENSE_W_MAX_N:
            self.w_dense = np.full((n + 1, n), np.inf, dtype=np.float64)
            self.w_dense[csr.in_tails, csr.in_targets] = csr.in_weights
        for degree in np.unique(indeg[indeg > 0]):
            verts = np.flatnonzero(indeg == degree)
            # slots of each class vertex's in-edges are contiguous in
            # the CSR arrays; gather them as one (k, degree) block
            slots = (
                csr.in_indptr[verts][:, None] + np.arange(degree)[None, :]
            )
            tails = csr.in_tails[slots]
            weights = csr.in_weights[slots]
            self.verts.append(verts)
            self.tails.append(np.ascontiguousarray(tails.T))
            self.tail_ids.append(np.ascontiguousarray(tails.T.astype(np.int32)))
            self.weights.append(np.ascontiguousarray(weights.T))

    def scratch_for(self, rows: int, n: int) -> List[Tuple[np.ndarray, ...]]:
        """Per-class reusable sweep buffers for blocks of ``rows``
        sources: ``(cand, win, ids)`` tensors of shape
        ``(rows, degree, |c|)`` plus shared ``(rows, n)`` output and
        index buffers (appended as a final pseudo-class entry).
        Freshly allocating these every sweep would hit the allocator's
        mmap path and pay a page fault per touched page; reusing them
        keeps sweeps compute-bound.  (Sweeps are sequential per engine
        run; the buffers are not thread-safe.)
        """
        if self._scratch_rows != rows:
            buffers: List[Tuple[np.ndarray, ...]] = []
            for tails in self.tails:
                k = tails.shape[1]
                buffers.append((
                    np.empty((rows,) + tails.shape, dtype=np.float64),
                    np.empty((rows, k), dtype=bool),
                    np.empty((rows, k), dtype=np.int32),
                ))
            buffers.append((
                np.empty((rows, n), dtype=np.float64),      # nd
                np.empty((rows, n), dtype=np.float64),      # weight tmp
                np.empty((rows, n), dtype=np.int64),        # flat indices
                np.empty((rows, n), dtype=np.int32),        # parents i32
                np.empty((rows, n), dtype=np.int64),        # parents i64
                np.arange(rows, dtype=np.int64)[:, None] * n,  # row offsets
            ))
            self._scratch = buffers
            self._scratch_rows = rows
        return self._scratch

    def release_scratch_if_large(self) -> None:
        """Drop cached sweep buffers above :data:`_SCRATCH_KEEP_BYTES`.

        Called when an engine run completes: small scratch (tests,
        benchmarks, modest graphs) stays cached for cheap repeat
        builds, while big graphs don't keep multi-MiB dead buffers
        alive through the snapshot cache.
        """
        total = sum(
            arr.nbytes for group in self._scratch for arr in group
        )
        if total > _SCRATCH_KEEP_BYTES:
            self._scratch = []
            self._scratch_rows = -1


def _canonical_sweep(
    d: np.ndarray,
    classes: _DegreeClasses,
    n: int,
    src: np.ndarray,
    tie_eps: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """One batched canonical relaxation of every vertex, every source.

    Args:
        d: ``(b, n)`` current distances for a block of sources.
        classes: the degree-class tensors.
        n: vertex count (parent sentinel for "no candidate").
        src: ``(b,)`` the source vertex of each row.
        tie_eps: tie tolerance.

    Returns:
        ``(nd, np_)``: relaxed distances and the canonical parents
        implied by them.  Both are pure functions of ``d``; the
        returned arrays live in the classes' scratch buffers and are
        only valid until the next sweep over the same classes.
    """
    b = d.shape[0]
    scratch = classes.scratch_for(b, n)
    nd, wtmp, idx, npar32, npar = scratch[-1][:5]
    rowoff = scratch[-1][5]
    npar32.fill(n)  # sentinel: no candidate found (yet)
    sentinel = np.int32(n)
    dense = classes.w_dense is not None
    if not dense:
        nd.fill(np.inf)
    for verts, tails, tail_ids, weights, (cand, win, parent) in zip(
        classes.verts, classes.tails, classes.tail_ids,
        classes.weights, scratch,
    ):
        # (b, degree, |c|) candidate distances through every in-edge
        np.take(d, tails.reshape(-1), axis=1,
                out=cand.reshape(b, tails.size))
        cand += weights
        thr = cand.min(axis=1)
        thr += tie_eps
        # the smallest tail id whose candidate falls in the tie window
        # wins; fold degree slices through a running minimum so only
        # small (b, |c|) temporaries are touched
        parent.fill(n)
        for j in range(tails.shape[0]):
            np.less_equal(cand[:, j, :], thr, out=win)
            np.minimum(
                parent, np.where(win, tail_ids[j], sentinel), out=parent
            )
        npar32[:, verts] = parent
        if not dense:
            # no dense weight lookup (large n): extract the winner's
            # candidate value with one more masked pass per slice
            vals = np.full(thr.shape, np.inf)
            for j in range(tails.shape[0]):
                np.equal(tail_ids[j], parent, out=win)
                np.minimum(
                    vals, np.where(win, cand[:, j, :], np.inf), out=vals
                )
            nd[:, verts] = vals
    # d[s, v] becomes the winning parent's own candidate value
    # d[s, parent] + w(parent, v) — the exact float the sequential
    # fold stores when that predecessor relaxes v.  With the dense
    # weight lookup this is two flat gathers over the whole block
    # (sentinel parents read w_dense's all-inf row n, yielding inf).
    npar[...] = npar32
    if dense:
        np.minimum(npar, n - 1, out=idx)
        idx += rowoff
        np.take(d.reshape(-1), idx.reshape(-1), out=nd.reshape(-1))
        np.multiply(npar, n, out=idx)
        idx += np.arange(n, dtype=np.int64)
        np.take(classes.w_dense.reshape(-1), idx.reshape(-1),
                out=wtmp.reshape(-1))
        nd += wtmp
    # unreachable vertices (and vertices with no in-edges) stay at
    # inf with parent -1, exactly like the sequential engine
    np.copyto(npar, -1, where=np.isinf(nd))
    rows = np.arange(b)
    nd[rows, src] = 0.0
    npar[rows, src] = -1
    return nd, npar


def _min_sweep(
    d: np.ndarray, classes: _DegreeClasses, src: np.ndarray
) -> np.ndarray:
    """One plain min-relaxation sweep (warm-start fallback mode)."""
    nd = np.full_like(d, np.inf)
    for verts, tails, weights in zip(
        classes.verts, classes.tails, classes.weights
    ):
        nd[:, verts] = (d[:, tails] + weights).min(axis=1)
    np.minimum(nd, d, out=nd)
    nd[np.arange(d.shape[0]), src] = 0.0
    return nd


def min_distances(
    csr: CSRGraph, classes: Optional[_DegreeClasses] = None
) -> np.ndarray:
    """The plain ``(n, n)`` minimum distance matrix (no canonical
    tie-breaking; used as the engine's warm start and useful on its
    own for analyses that need distances but not trees).

    Uses :mod:`scipy.sparse.csgraph` when installed; otherwise falls
    back to batched Bellman-Ford sweeps, which converge in
    (hop-diameter) sweeps.
    """
    n = csr.n
    d = np.full((n, n), np.inf, dtype=np.float64)
    np.fill_diagonal(d, 0.0)
    if csr.m == 0:
        return d
    classes = classes or _degree_classes(csr)
    if _sp_dijkstra is not None:
        if classes._sp_matrix is None:
            classes._sp_matrix = _sp_csr_matrix(
                (csr.out_weights, csr.out_heads, csr.out_indptr),
                shape=(n, n),
            )
        return np.asarray(_sp_dijkstra(classes._sp_matrix), dtype=np.float64)
    src = np.arange(n)
    for _sweep in range(n + 1):
        nd = _min_sweep(d, classes, src)
        if np.array_equal(nd, d):
            return d
        d = nd
    raise GraphError("batched min-distance sweeps did not converge")


def _min_distances_block(
    csr: CSRGraph, classes: _DegreeClasses, lo: int, hi: int
) -> np.ndarray:
    """Rows ``lo:hi`` of the minimum distance matrix, computed without
    materializing the other rows (the warm start for one source block).

    Dijkstra treats every source independently, so these rows are the
    identical floats :func:`min_distances` would place at ``[lo:hi]`` —
    and even if a warm start ever differed, the canonical sweep's
    unique fixpoint (module docstring) makes the downstream result
    independent of it.
    """
    n = csr.n
    src = np.arange(lo, hi)
    if _sp_dijkstra is not None:
        if classes._sp_matrix is None:
            classes._sp_matrix = _sp_csr_matrix(
                (csr.out_weights, csr.out_heads, csr.out_indptr),
                shape=(n, n),
            )
        return np.asarray(
            _sp_dijkstra(classes._sp_matrix, indices=src), dtype=np.float64
        )
    d = np.full((hi - lo, n), np.inf, dtype=np.float64)
    d[np.arange(hi - lo), src] = 0.0
    for _sweep in range(n + 1):
        nd = _min_sweep(d, classes, src)
        if np.array_equal(nd, d):
            return d
        d = nd
    raise GraphError("batched min-distance sweeps did not converge")


def apsp_blocks(
    csr: CSRGraph,
    block_rows: Optional[int] = None,
    tie_eps: float = TIE_EPS,
    chunk_elems: int = _CHUNK_ELEMS,
):
    """Stream APSP results one source block at a time.

    Yields ``(lo, hi, d_block, parent_block)`` tuples covering sources
    ``lo:hi`` with ``(hi - lo, n)`` matrices; concatenating the blocks
    reproduces :func:`apsp_matrices` bit-for-bit (the canonical sweep
    for a source block reads only that block's rows, and its fixpoint
    is unique — see the module docstring), but peak memory is
    ``O(block_rows * n)`` instead of ``O(n^2)``.  This is the
    backbone of the blocked compiled-table family: at n = 10^5 the
    dense matrices would be 80 GB each, while a 64-row block is 50 MB.

    Args:
        csr: the CSR adjacency snapshot.
        block_rows: sources per block (defaults to the same
            memory-bounded heuristic :func:`apsp_matrices` chunks by).
            Any value in ``[1, n]`` yields identical concatenated
            output, including sizes that do not divide ``n``.
        tie_eps: tie tolerance (see module docstring).
        chunk_elems: memory cap used by the default block heuristic.
    """
    n = csr.n
    if csr.m == 0:
        block = block_rows or max(1, n)
        for lo in range(0, max(n, 0), block):
            hi = min(n, lo + block)
            d_blk = np.full((hi - lo, n), np.inf, dtype=np.float64)
            d_blk[np.arange(hi - lo), np.arange(lo, hi)] = 0.0
            yield lo, hi, d_blk, np.full((hi - lo, n), -1, dtype=np.int64)
        return
    if not vectorized_engine_supported(csr):
        raise GraphError(
            "vectorized APSP requires edge weights that dominate both "
            f"the tie tolerance ({tie_eps}) and the float spacing at "
            f"the graph's distance scale; got min weight "
            f"{csr.min_weight()}; use the python engine"
        )
    if block_rows is not None and block_rows < 1:
        raise GraphError(f"block_rows must be >= 1, got {block_rows}")
    classes = _degree_classes(csr)
    padded_m = sum(t.size for t in classes.tails)
    block = block_rows or max(1, min(n, int(chunk_elems // max(padded_m, 1))))
    try:
        for lo in range(0, n, block):
            hi = min(n, lo + block)
            src = np.arange(lo, hi)
            d_blk = _min_distances_block(csr, classes, lo, hi)
            d_blk[np.arange(hi - lo), src] = 0.0
            for _sweep in range(n + 2):
                nd, npar = _canonical_sweep(d_blk, classes, n, src, tie_eps)
                if np.array_equal(nd, d_blk):
                    # npar lives in reusable scratch — hand out a copy
                    yield lo, hi, d_blk, npar.copy()
                    break
                d_blk[...] = nd
            else:  # pragma: no cover - backstop, unreachable for valid input
                raise GraphError("batched APSP did not converge")
    finally:
        classes.release_scratch_if_large()


def _min_distances_rows(
    csr: CSRGraph, classes: _DegreeClasses, src: np.ndarray
) -> np.ndarray:
    """Warm-start minimum distances for an arbitrary ordered source
    set (the scattered-source sibling of :func:`_min_distances_block`).
    """
    n = csr.n
    if _sp_dijkstra is not None:
        if classes._sp_matrix is None:
            classes._sp_matrix = _sp_csr_matrix(
                (csr.out_weights, csr.out_heads, csr.out_indptr),
                shape=(n, n),
            )
        return np.asarray(
            _sp_dijkstra(classes._sp_matrix, indices=src), dtype=np.float64
        )
    d = np.full((src.shape[0], n), np.inf, dtype=np.float64)
    d[np.arange(src.shape[0]), src] = 0.0
    for _sweep in range(n + 1):
        nd = _min_sweep(d, classes, src)
        if np.array_equal(nd, d):
            return d
        d = nd
    raise GraphError("batched min-distance sweeps did not converge")


def apsp_rows(
    csr: CSRGraph,
    sources,
    tie_eps: float = TIE_EPS,
    chunk_elems: int = _CHUNK_ELEMS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical APSP rows for an *arbitrary* ordered source set.

    ``apsp_rows(csr, sources)[i]`` is bit-identical to row
    ``sources[i]`` of :func:`apsp_matrices` — each source's row is
    computed independently (per-source row independence) by the same
    warm start + canonical sweep, and the sweep's fixpoint is unique
    (module docstring), so scattering the sources changes nothing.
    This is the recomputation kernel of the incremental repair
    protocol (:mod:`repro.graph.repair`), which touches only the rows
    a :class:`~repro.graph.delta.GraphDelta` can have invalidated.

    Args:
        csr: the CSR adjacency snapshot.
        sources: ordered source vertex ids (any int array-like; need
            not be contiguous, sorted, or distinct).
        tie_eps: tie tolerance (see module docstring).
        chunk_elems: memory cap — sources are processed in blocks.

    Returns:
        ``(d, parent)`` of shape ``(len(sources), n)``, row ``i``
        belonging to source ``sources[i]``.

    Raises:
        GraphError: when :func:`vectorized_engine_supported` is false.
    """
    n = csr.n
    src_all = np.asarray(sources, dtype=np.int64).reshape(-1)
    b = src_all.shape[0]
    if np.any((src_all < 0) | (src_all >= n)):
        raise GraphError(f"apsp_rows sources out of range [0, {n})")
    d_out = np.empty((b, n), dtype=np.float64)
    p_out = np.empty((b, n), dtype=np.int64)
    if b == 0:
        return d_out, p_out
    if csr.m == 0:
        d_out.fill(np.inf)
        d_out[np.arange(b), src_all] = 0.0
        p_out.fill(-1)
        return d_out, p_out
    if not vectorized_engine_supported(csr):
        raise GraphError(
            "vectorized APSP requires edge weights that dominate both "
            f"the tie tolerance ({tie_eps}) and the float spacing at "
            f"the graph's distance scale; got min weight "
            f"{csr.min_weight()}; use the python engine"
        )
    classes = _degree_classes(csr)
    padded_m = sum(t.size for t in classes.tails)
    block = max(1, min(b, int(chunk_elems // max(padded_m, 1))))
    try:
        for lo in range(0, b, block):
            hi = min(b, lo + block)
            src = src_all[lo:hi]
            d_blk = _min_distances_rows(csr, classes, src)
            d_blk[np.arange(hi - lo), src] = 0.0
            for _sweep in range(n + 2):
                nd, npar = _canonical_sweep(d_blk, classes, n, src, tie_eps)
                if np.array_equal(nd, d_blk):
                    d_out[lo:hi] = d_blk
                    p_out[lo:hi] = npar
                    break
                d_blk[...] = nd
            else:  # pragma: no cover - backstop, unreachable for valid input
                raise GraphError("batched APSP did not converge")
    finally:
        classes.release_scratch_if_large()
    return d_out, p_out


def apsp_matrices(
    csr: CSRGraph,
    tie_eps: float = TIE_EPS,
    chunk_elems: int = _CHUNK_ELEMS,
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs distances and canonical shortest-path-tree parents.

    Args:
        csr: the CSR adjacency snapshot.
        tie_eps: tie tolerance (see module docstring).
        chunk_elems: memory cap — sources are processed in blocks of
            about ``chunk_elems / (2 m)`` rows.

    Returns:
        ``(d, parent)``: ``d`` is the ``(n, n)`` float64 matrix with
        ``d[s, v]`` the shortest ``s -> v`` distance (``inf`` when
        unreachable); ``parent`` is the ``(n, n)`` int64 matrix with
        ``parent[s, v]`` the canonical tree parent of ``v`` in the
        out-tree rooted at ``s`` (``-1`` for the source itself and for
        unreachable vertices).  Both match the per-source
        :func:`repro.graph.shortest_paths.dijkstra` output exactly.

    Raises:
        GraphError: if an edge weight is too close to ``tie_eps`` for
            the canonical tie-break to be exact
            (:func:`vectorized_engine_supported` is then false and the
            caller should use the sequential engine).
    """
    n = csr.n
    parent = np.full((n, n), -1, dtype=np.int64)
    if csr.m == 0:
        d = np.full((n, n), np.inf, dtype=np.float64)
        np.fill_diagonal(d, 0.0)
        return d, parent
    if not vectorized_engine_supported(csr):
        raise GraphError(
            "vectorized APSP requires edge weights that dominate both "
            f"the tie tolerance ({tie_eps}) and the float spacing at "
            f"the graph's distance scale; got min weight "
            f"{csr.min_weight()}; use the python engine"
        )
    classes = _degree_classes(csr)
    d = min_distances(csr, classes)
    np.fill_diagonal(d, 0.0)
    # Pad rows per the padded edge count so chunks bound peak memory.
    padded_m = sum(t.size for t in classes.tails)
    block = max(1, min(n, int(chunk_elems // max(padded_m, 1))))
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        src = np.arange(lo, hi)
        d_blk = d[lo:hi]
        # A sweep's parents are a pure function of its input distances,
        # so stability of the distances alone certifies the fixpoint.
        for _sweep in range(n + 2):
            nd, npar = _canonical_sweep(d_blk, classes, n, src, tie_eps)
            if np.array_equal(nd, d_blk):
                parent[lo:hi] = npar
                break
            d_blk[...] = nd
        else:  # pragma: no cover - backstop, unreachable for valid input
            raise GraphError("batched APSP did not converge")
    classes.release_scratch_if_large()
    return d, parent
