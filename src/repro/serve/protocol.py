"""The ``repro-serve/1`` wire protocol: versioned JSON over HTTP.

Every daemon response is a JSON object carrying ``"schema":
"repro-serve/1"``; request bodies are JSON objects that may carry the
same field (when present it must match — a client from a future
protocol version fails loudly instead of being half-understood).
Errors travel as a structured body::

    {"schema": "repro-serve/1",
     "error": {"code": "unknown-scheme", "message": "...",
               "choices": ["rtz", "stretch6", ...]}}

with the HTTP status mirroring the code (400 for malformed requests,
404 for unknown endpoints, 429 for shed load, 503 while draining, 500
for daemon bugs).

This module is deliberately transport-free: it only turns dicts into
validated request dataclasses and route results / traffic summaries
into dicts, so the daemon (:mod:`repro.serve.app`), the client
(:mod:`repro.serve.client`), and the golden round-trip tests all share
one source of truth for what the bytes mean.

Float fields round-trip exactly: Python's ``json`` emits
``repr``-faithful doubles (and accepts ``NaN``/``Infinity``), so a
served ``cost``/``stretch`` compares bit-identical to the direct
library call's value.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import GraphError, ReproError
from repro.graph.delta import GraphDelta
from repro.runtime.traffic import EpochStretch, TrafficSummary, WORKLOAD_KINDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.router import RouteResult

#: protocol schema identifier (bump on any incompatible change)
SCHEMA = "repro-serve/1"

#: error codes the protocol defines, with their HTTP statuses
ERROR_STATUS = {
    "bad-request": 400,
    "unknown-scheme": 400,
    "unknown-endpoint": 404,
    "server-busy": 429,
    "draining": 503,
    "server-error": 500,
}


class ProtocolError(ReproError):
    """A request the daemon rejects (or a response the client cannot
    accept), carrying the protocol error code and any structured extras
    (e.g. ``choices`` for ``unknown-scheme``)."""

    def __init__(self, message: str, code: str = "bad-request", **extra: Any):
        super().__init__(message)
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        self.extra = dict(extra)

    @property
    def status(self) -> int:
        """The HTTP status this error travels under."""
        return ERROR_STATUS[self.code]

    def body(self) -> Dict[str, Any]:
        """The structured error body (schema envelope included)."""
        error: Dict[str, Any] = {"code": self.code, "message": str(self)}
        error.update(self.extra)
        return {"schema": SCHEMA, "error": error}


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------

def parse_request(raw: bytes) -> Dict[str, Any]:
    """Parse a request body into a schema-checked dict.

    An empty body is a valid empty request (GET-style endpoints and
    parameterless POSTs like a same-graph ``/reload``).

    Raises:
        ProtocolError: for non-JSON bodies, non-object documents, or a
            ``schema`` field naming a different protocol version.
    """
    if not raw:
        return {}
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema is not None and schema != SCHEMA:
        raise ProtocolError(
            f"request schema {schema!r} does not match {SCHEMA!r}"
        )
    return doc


def _require_int(doc: Mapping[str, Any], field: str) -> int:
    value = doc.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"field {field!r} must be an integer, got {value!r}"
        )
    return value


def _optional_int(doc: Mapping[str, Any], field: str) -> Optional[int]:
    if doc.get(field) is None:
        return None
    return _require_int(doc, field)


def _optional_str(doc: Mapping[str, Any], field: str) -> Optional[str]:
    value = doc.get(field)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ProtocolError(
            f"field {field!r} must be a string, got {value!r}"
        )
    return value


def decode_pairs(value: Any) -> List[Tuple[int, int]]:
    """Validate a ``pairs`` field: a list of ``[source, dest]`` integer
    two-lists (tuples accepted on the encode side).

    Raises:
        ProtocolError: for anything else.
    """
    if not isinstance(value, list):
        raise ProtocolError(
            f"field 'pairs' must be a list of [source, dest] pairs, "
            f"got {type(value).__name__}"
        )
    pairs: List[Tuple[int, int]] = []
    for i, item in enumerate(value):
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) for v in item)
        ):
            raise ProtocolError(
                f"pairs[{i}] must be a [source, dest] integer pair, "
                f"got {item!r}"
            )
        pairs.append((item[0], item[1]))
    return pairs


@dataclass(frozen=True)
class RouteManyRequest:
    """``POST /route`` and ``POST /route_many``: route explicit pairs.

    ``scheme`` of ``None`` means the daemon's default scheme.
    """

    pairs: Tuple[Tuple[int, int], ...]
    scheme: Optional[str] = None

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "RouteManyRequest":
        if "pairs" in doc:
            if "source" in doc or "dest" in doc:
                raise ProtocolError(
                    "pass either 'pairs' or 'source'/'dest', not both"
                )
            pairs = decode_pairs(doc["pairs"])
        else:
            pairs = [(_require_int(doc, "source"), _require_int(doc, "dest"))]
        return cls(pairs=tuple(pairs), scheme=_optional_str(doc, "scheme"))

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": SCHEMA,
            "pairs": [[s, t] for s, t in self.pairs],
        }
        if self.scheme is not None:
            doc["scheme"] = self.scheme
        return doc


@dataclass(frozen=True)
class WorkloadRequest:
    """``POST /workload``: generate and route a workload.

    Two mutually exclusive forms:

    * **named** — ``kind``/``count``/``seed``: the daemon derives the
      pair sequence exactly as ``repro traffic`` does
      (``random.Random(seed + 3)`` against the loaded graph), so a
      served summary diffs bit-identically against the offline CLI run
      with the same parameters;
    * **scenario** — a full ``repro-scenario/1`` document
      (``{"scenario": {...}}``): the daemon replays the spec's phase
      sequence (seeded per phase, same derivation as ``repro scenario
      run``) against its *own* loaded graph and default scheme — the
      spec's ``graph`` and ``matrix`` blocks do not apply to a live
      daemon.  Phases carrying churn ``events`` are rejected with 400:
      the daemon's topology only mutates through ``/reload``.
    """

    kind: Optional[str] = None
    count: int = 0
    seed: int = 0
    scheme: Optional[str] = None
    scenario: Optional[Dict[str, Any]] = None

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "WorkloadRequest":
        scheme = _optional_str(doc, "scheme")
        scenario = doc.get("scenario")
        if scenario is not None:
            from repro.scenarios import ScenarioError, ScenarioSpec

            for forbidden in ("kind", "count"):
                if doc.get(forbidden) is not None:
                    raise ProtocolError(
                        "pass either 'scenario' or 'kind'/'count', not both"
                    )
            try:
                spec = ScenarioSpec.from_doc(scenario)
            except ScenarioError as exc:
                raise ProtocolError(f"malformed scenario: {exc}")
            if spec.total_events:
                raise ProtocolError(
                    "scenario workloads must not carry churn events (the "
                    "daemon's topology only mutates through /reload); "
                    "remove the phase 'events'"
                )
            return cls(scheme=scheme, scenario=spec.to_doc())
        kind = _optional_str(doc, "kind")
        if kind is None:
            raise ProtocolError("field 'kind' is required")
        if kind not in WORKLOAD_KINDS:
            raise ProtocolError(
                f"unknown workload kind {kind!r}",
                choices=list(WORKLOAD_KINDS),
            )
        count = _require_int(doc, "count")
        if count < 0:
            raise ProtocolError(f"field 'count' must be >= 0, got {count}")
        seed = _optional_int(doc, "seed")
        return cls(
            kind=kind,
            count=count,
            seed=0 if seed is None else seed,
            scheme=scheme,
        )

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": SCHEMA}
        if self.scenario is not None:
            doc["scenario"] = self.scenario
        else:
            doc["kind"] = self.kind
            doc["count"] = self.count
            doc["seed"] = self.seed
        if self.scheme is not None:
            doc["scheme"] = self.scheme
        return doc


@dataclass(frozen=True)
class ReloadRequest:
    """``POST /reload``: swap in a new graph snapshot.

    Two mutually exclusive forms:

    * **snapshot** — ``family``/``n``/``seed`` (each defaulting to the
      current generation's value, so an empty body reloads the same
      graph: a fresh-artifact restart without downtime);
    * **delta** — a :class:`~repro.graph.delta.GraphDelta` document
      (``{"delta": {"ops": [...]}}``) evolved from the *current*
      generation's network through
      :meth:`~repro.api.network.Network.evolve`, carrying artifacts
      and repairing the oracle incrementally where the protocol
      applies.
    """

    family: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    delta: Optional[GraphDelta] = None

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ReloadRequest":
        delta_doc = doc.get("delta")
        delta: Optional[GraphDelta] = None
        if delta_doc is not None:
            if any(doc.get(f) is not None for f in ("family", "n", "seed")):
                raise ProtocolError(
                    "pass either 'delta' or 'family'/'n'/'seed', not both"
                )
            try:
                delta = GraphDelta.from_doc(delta_doc)
            except GraphError as exc:
                raise ProtocolError(f"malformed delta: {exc}")
            return cls(delta=delta)
        n = _optional_int(doc, "n")
        if n is not None and n < 2:
            raise ProtocolError(f"field 'n' must be >= 2, got {n}")
        return cls(
            family=_optional_str(doc, "family"),
            n=n,
            seed=_optional_int(doc, "seed"),
        )

    def to_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": SCHEMA}
        for field in ("family", "n", "seed"):
            value = getattr(self, field)
            if value is not None:
                doc[field] = value
        if self.delta is not None:
            doc["delta"] = self.delta.to_doc()
        return doc


# ----------------------------------------------------------------------
# response encoding / decoding
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServedRoute:
    """One routed pair as it travels over the wire — the transportable
    subset of :class:`repro.api.router.RouteResult` (the hop-by-hop
    trace stays on the daemon)."""

    source: int
    dest: int
    dest_name: int
    cost: float
    hops: int
    max_header_bits: int
    stretch: float

    def to_doc(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "dest": self.dest,
            "dest_name": self.dest_name,
            "cost": self.cost,
            "hops": self.hops,
            "max_header_bits": self.max_header_bits,
            "stretch": self.stretch,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ServedRoute":
        try:
            return cls(
                source=int(doc["source"]),
                dest=int(doc["dest"]),
                dest_name=int(doc["dest_name"]),
                cost=float(doc["cost"]),
                hops=int(doc["hops"]),
                max_header_bits=int(doc["max_header_bits"]),
                stretch=float(doc["stretch"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed route result: {exc}")

    @classmethod
    def from_result(cls, result: "RouteResult") -> "ServedRoute":
        return cls(
            source=result.source,
            dest=result.dest,
            dest_name=result.dest_name,
            cost=result.cost,
            hops=result.hops,
            max_header_bits=result.max_header_bits,
            stretch=result.stretch,
        )


#: TrafficSummary fields carried verbatim over the wire
_SUMMARY_FIELDS = (
    "kind", "pairs", "total_cost", "total_hops", "mean_cost", "mean_hops",
    "max_hops", "max_header_bits", "mean_stretch", "max_stretch",
    "elapsed_s",
)


def encode_summary(summary: TrafficSummary) -> Dict[str, Any]:
    """A :class:`TrafficSummary` as a wire dict (all fields; the
    ``epochs`` key only travels for churn-timeline summaries)."""
    doc: Dict[str, Any] = {
        field: getattr(summary, field) for field in _SUMMARY_FIELDS
    }
    doc["worst_pair"] = list(summary.worst_pair)
    if summary.epochs:
        doc["epochs"] = [e.as_dict() for e in summary.epochs]
    return doc


def decode_summary(doc: Mapping[str, Any]) -> TrafficSummary:
    """Rebuild a :class:`TrafficSummary` from its wire dict.

    Raises:
        ProtocolError: when required fields are missing or mistyped.
    """
    try:
        worst = doc["worst_pair"]
        epochs = tuple(
            EpochStretch.from_dict(e) for e in doc.get("epochs", ())
        )
        return TrafficSummary(
            kind=str(doc["kind"]),
            pairs=int(doc["pairs"]),
            total_cost=float(doc["total_cost"]),
            total_hops=int(doc["total_hops"]),
            mean_cost=float(doc["mean_cost"]),
            mean_hops=float(doc["mean_hops"]),
            max_hops=int(doc["max_hops"]),
            max_header_bits=int(doc["max_header_bits"]),
            mean_stretch=float(doc["mean_stretch"]),
            max_stretch=float(doc["max_stretch"]),
            worst_pair=(int(worst[0]), int(worst[1])),
            elapsed_s=float(doc["elapsed_s"]),
            epochs=epochs,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed traffic summary: {exc}")


def encode_results(
    results: Sequence["RouteResult"], generation: int
) -> Dict[str, Any]:
    """The ``/route_many`` response body: per-pair results in input
    order, tagged with the generation that served them."""
    return {
        "schema": SCHEMA,
        "generation": generation,
        "results": [ServedRoute.from_result(r).to_doc() for r in results],
    }


def decode_results(doc: Mapping[str, Any]) -> Tuple[int, List[ServedRoute]]:
    """Decode a ``/route_many`` response into ``(generation, routes)``."""
    results = doc.get("results")
    if not isinstance(results, list):
        raise ProtocolError("response has no 'results' list")
    generation = doc.get("generation")
    if isinstance(generation, bool) or not isinstance(generation, int):
        raise ProtocolError("response has no integer 'generation'")
    return generation, [ServedRoute.from_doc(r) for r in results]


def encode_body(doc: Mapping[str, Any]) -> bytes:
    """Serialize a response dict (schema envelope enforced)."""
    payload = dict(doc)
    payload.setdefault("schema", SCHEMA)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_body(raw: bytes) -> Dict[str, Any]:
    """Parse a response body on the client side.

    Raises:
        ProtocolError: for non-JSON bodies, schema mismatches, or a
            structured error body (re-raised with its code/extras).
    """
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"response body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError("response body must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ProtocolError(
            f"response schema {doc.get('schema')!r} does not match {SCHEMA!r}"
        )
    error = doc.get("error")
    if error is not None:
        if not isinstance(error, dict):
            raise ProtocolError("malformed error body")
        code = error.get("code", "server-error")
        if code not in ERROR_STATUS:
            code = "server-error"
        message = str(error.get("message", "unknown server error"))
        extra = {
            k: v for k, v in error.items() if k not in ("code", "message")
        }
        raise ProtocolError(message, code=code, **extra)
    return doc
