"""The synchronous daemon client (library + ``repro client`` backend).

A thin, dependency-free HTTP/1.1 client over :mod:`http.client`,
speaking the ``repro-serve/1`` protocol.  One :class:`ServeClient`
holds one keep-alive connection (reconnecting transparently when the
daemon closes it), so request loops pay connection setup once; for
concurrent load, give each thread its own client.

Structured daemon errors surface as
:class:`~repro.serve.protocol.ProtocolError` with the wire code and
extras (``exc.code == "unknown-scheme"`` carries ``choices``);
transport failures (daemon not running, connection refused) surface as
:class:`ServeConnectionError`.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graph.delta import GraphDelta
from repro.runtime.traffic import TrafficSummary
from repro.serve.protocol import (
    ProtocolError,
    ReloadRequest,
    RouteManyRequest,
    ServedRoute,
    WorkloadRequest,
    decode_body,
    decode_results,
    decode_summary,
)


class ServeConnectionError(ReproError):
    """The daemon could not be reached (not running, wrong port, or a
    connection dropped mid-request)."""


class ServeClient:
    """A session against one running daemon.

    Args:
        host: daemon host.
        port: daemon port.
        timeout: per-request socket timeout in seconds (reloads build
            whole networks — size it for the graphs you serve).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8577,
        timeout: float = 120.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the kept-alive connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self, method: str, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if doc is None else json.dumps(doc).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        last_exc: Optional[Exception] = None
        for attempt in (0, 1):  # one transparent retry on a stale socket
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except (http.client.HTTPException, OSError, socket.timeout) as exc:
                self.close()
                last_exc = exc
                if attempt == 0:
                    continue
                raise ServeConnectionError(
                    f"cannot reach repro-serve at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            return decode_body(payload)
        raise ServeConnectionError(  # pragma: no cover - loop invariant
            f"cannot reach repro-serve at {self.host}:{self.port}: {last_exc}"
        )

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Liveness + the current generation descriptor."""
        return self._request("GET", "/healthz")

    def schemes(self) -> Dict[str, Any]:
        """The daemon's scheme registry view."""
        return self._request("GET", "/schemes")

    def stats(self) -> Dict[str, Any]:
        """Live session/store/broker/server counters."""
        return self._request("GET", "/stats")

    def route(
        self, source: int, dest: int, scheme: Optional[str] = None
    ) -> Tuple[int, ServedRoute]:
        """Route one pair; returns ``(generation, result)``."""
        generation, results = self.route_many([(source, dest)], scheme=scheme)
        return generation, results[0]

    def route_many(
        self,
        pairs: Sequence[Tuple[int, int]],
        scheme: Optional[str] = None,
    ) -> Tuple[int, List[ServedRoute]]:
        """Route a batch; returns ``(generation, results)`` in input
        order.  Concurrent calls coalesce into shared engine batches
        daemon-side; results are bit-identical either way."""
        req = RouteManyRequest(pairs=tuple(pairs), scheme=scheme)
        doc = self._request("POST", "/route_many", req.to_doc())
        return decode_results(doc)

    def workload(
        self,
        kind: Optional[str] = None,
        count: int = 0,
        seed: int = 0,
        scheme: Optional[str] = None,
        scenario: Any = None,
    ) -> Tuple[int, TrafficSummary]:
        """Generate and route a workload daemon-side; returns
        ``(generation, summary)`` with the summary decoded back into a
        :class:`TrafficSummary` (its ``format()`` matches the offline
        ``repro traffic`` block).

        Pass either ``kind``/``count``/``seed`` (a named workload) or
        ``scenario`` — a ``repro-scenario/1`` spec, file path, or
        document — to replay the spec's phase sequence against the
        daemon's loaded graph (event-carrying specs are rejected)."""
        if scenario is not None:
            from repro.scenarios import load_scenario

            spec = load_scenario(scenario)
            req = WorkloadRequest(scheme=scheme, scenario=spec.to_doc())
        else:
            if kind is None:
                raise ProtocolError("workload needs a kind or a scenario")
            req = WorkloadRequest(
                kind=kind, count=count, seed=seed, scheme=scheme
            )
        doc = self._request("POST", "/workload", req.to_doc())
        summary_doc = doc.get("summary")
        if not isinstance(summary_doc, dict):
            raise ProtocolError("response has no 'summary' object")
        generation = doc.get("generation")
        if not isinstance(generation, int):
            raise ProtocolError("response has no integer 'generation'")
        return generation, decode_summary(summary_doc)

    def reload(
        self,
        family: Optional[str] = None,
        n: Optional[int] = None,
        seed: Optional[int] = None,
        delta: Any = None,
    ) -> Dict[str, Any]:
        """Gracefully swap the daemon's graph snapshot; omitted fields
        keep their current values.  Blocks until the new generation
        serves and the old one drained.

        ``delta`` — a :class:`~repro.graph.delta.GraphDelta` or its
        document form — evolves the *current* generation's network
        instead of building a fresh snapshot (mutually exclusive with
        family/n/seed); the response's ``delta`` block reports the
        applied ops and the repair accounting."""
        if delta is not None and not isinstance(delta, GraphDelta):
            delta = GraphDelta.from_doc(delta)
        req = ReloadRequest(family=family, n=n, seed=seed, delta=delta)
        return self._request("POST", "/reload", req.to_doc())
