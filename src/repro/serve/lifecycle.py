"""Graph-snapshot generations and graceful reload.

The daemon owns exactly one *current* :class:`Generation` — a frozen
graph's :class:`~repro.api.Network`, its lazily-built per-scheme
:class:`~repro.api.router.Router` sessions, and its own
:class:`~repro.serve.broker.BatchBroker` (brokers are per-generation so
a coalesced batch can never mix pairs from two different graphs).

``POST /reload`` builds the replacement generation **before** touching
the current one (the expensive part — network + artifact builds — runs
on a worker thread while old-generation traffic keeps flowing), then
swaps the current pointer atomically on the event loop.  Requests
admitted before the swap keep their reference to the old generation
and finish against it; requests admitted after land on the new one.
The old generation then *drains* — its broker serves every queued pair
and the in-flight counter falls to zero — before its network is
released.  Zero requests are dropped; every response is tagged with
the generation that served it.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import Network, UnknownSchemeError, get_spec
from repro.api.router import RouteResult, Router
from repro.api.stats import SessionStats
from repro.runtime.traffic import TrafficSummary, generate_workload
from repro.serve.broker import BatchBroker
from repro.serve.protocol import ProtocolError


class Generation:
    """One loaded graph snapshot and everything serving it.

    Args:
        gen_id: monotonically increasing generation counter.
        network: the built facade over the snapshot.
        family: graph family the snapshot was generated from.
        broker_opts: forwarded to this generation's
            :class:`BatchBroker` (``max_batch`` / ``max_queue`` /
            ``linger_s``).
    """

    def __init__(
        self,
        gen_id: int,
        network: Network,
        family: str,
        broker_opts: Optional[Dict[str, Any]] = None,
    ):
        self.id = gen_id
        self.network = network
        self.family = family
        self.broker = BatchBroker(self._execute, **(broker_opts or {}))
        self.inflight = 0
        self.retired = False
        self.created = time.time()
        self._routers: Dict[str, Router] = {}
        # router construction happens on executor threads (the broker's
        # execute path) and on the loop (workload serving warm-up)
        self._router_lock = threading.Lock()
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The snapshot descriptor responses embed."""
        return {
            "family": self.family,
            "n": self.network.n,
            "seed": self.network.seed,
            "engine": self.network.engine,
        }

    def router(self, scheme: str) -> Router:
        """The (cached) routing session for one scheme of this
        generation; safe to call from any thread.

        Raises:
            UnknownSchemeError: for names not in the registry.
        """
        get_spec(scheme)  # raise before taking the lock on a typo
        with self._router_lock:
            router = self._routers.get(scheme)
            if router is None:
                router = self.network.router(scheme)
                self._routers[scheme] = router
            return router

    def routers(self) -> List[Router]:
        """Every session built so far (stats collection)."""
        with self._router_lock:
            return list(self._routers.values())

    def _execute(
        self, scheme: str, pairs: List[Tuple[int, int]]
    ) -> Sequence[RouteResult]:
        """The broker's executor: one coalesced batch through the
        scheme's router (worker thread; one batch per scheme at a
        time)."""
        return self.router(scheme).route_many(pairs)

    def check_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Admission-time validation against this snapshot.

        Raises:
            ProtocolError: for out-of-range vertices or a
                source == destination pair (roundtrip stretch is
                undefined there).
        """
        n = self.network.n
        for s, t in pairs:
            if not (0 <= s < n and 0 <= t < n):
                raise ProtocolError(
                    f"pair ({s}, {t}) is out of range for n={n}"
                )
            if s == t:
                raise ProtocolError(
                    f"pair ({s}, {t}) needs source != destination"
                )

    def serve_workload(
        self, kind: str, count: int, seed: int, scheme: str
    ) -> TrafficSummary:
        """Generate and route a named workload (worker thread).

        The pair sequence derives from ``random.Random(seed + 3)``
        exactly as ``repro traffic --seed`` does, so a served summary
        diffs bit-identically against the offline CLI run.
        """
        workload = generate_workload(
            kind,
            self.network.n,
            count,
            rng=random.Random(seed + 3),
            oracle=self.network.oracle(),
        )
        return self.router(scheme).serve_workload(workload)

    def serve_scenario(
        self, doc: Dict[str, Any], scheme: str
    ) -> TrafficSummary:
        """Replay a ``repro-scenario/1`` spec's phase sequence against
        this snapshot (worker thread).

        Phase pairs derive exactly as the offline runner's
        (:func:`repro.scenarios.phase_workload` with the spec seed);
        each phase routes with the runner's fixed shard size and the
        per-phase summaries merge in order, so the served summary is
        deterministic from the spec.  Event-carrying specs were already
        rejected at request-parse time; trace pairs are range-checked
        against this graph.

        Raises:
            ProtocolError: for trace pairs out of range, or phase
                parameters the generator rejects.
        """
        from repro.exceptions import GraphError
        from repro.scenarios import (
            SCENARIO_SHARD_SIZE,
            ScenarioSpec,
            phase_workload,
        )

        spec = ScenarioSpec.from_doc(doc)
        router = self.router(scheme)
        parts = []
        for i, phase in enumerate(spec.phases):
            if phase.kind == "trace":
                self.check_pairs(phase.trace)
            try:
                workload = phase_workload(
                    phase, i, spec.seed, self.network.n,
                    oracle=self.network.oracle(),
                )
            except GraphError as exc:
                raise ProtocolError(f"phases[{i}]: {exc}")
            parts.append(
                router.serve_workload(
                    workload, shard_size=SCENARIO_SHARD_SIZE
                )
            )
        return TrafficSummary.merge(parts)

    def session_stats(self) -> SessionStats:
        """Consolidated network + router statistics."""
        return SessionStats.collect(self.network, self.routers())

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every admitted request has finished: the broker's
        queues run dry and the in-flight counter reaches zero."""
        await self.broker.drain()
        if self.inflight == 0:
            self._drained.set()
        await self._drained.wait()

    def note_release(self) -> None:
        """Called by :meth:`Lifecycle.release` when an admitted request
        finishes; the last one out signals the drain waiter."""
        if self.retired and self.inflight == 0:
            self._drained.set()


class Lifecycle:
    """Owns the current generation and the reload protocol.

    Args:
        family: initial graph family.
        n: initial graph size.
        seed: initial master seed.
        engine: engine knob for every generation's network.
        tables: compiled-table family knob (``"auto"`` / ``"dense"`` /
            ``"blocked"``) for every generation's network.
        schemes: scheme names to pre-build at load time (the first is
            the daemon's default scheme); must be non-empty.
        broker_opts: per-generation broker configuration.
        store: forwarded to :class:`~repro.api.Network` (``"auto"`` /
            ``None`` / an explicit store).
    """

    def __init__(
        self,
        family: str,
        n: int,
        seed: int = 0,
        engine: str = "auto",
        tables: str = "auto",
        schemes: Sequence[str] = ("stretch6",),
        broker_opts: Optional[Dict[str, Any]] = None,
        store: Any = "auto",
    ):
        if not schemes:
            raise UnknownSchemeError("the daemon needs at least one scheme")
        for name in schemes:
            get_spec(name)  # fail at startup, not on first request
        self.schemes = tuple(schemes)
        self.default_scheme = self.schemes[0]
        self._engine = engine
        self._tables = tables
        self._store = store
        self._broker_opts = dict(broker_opts or {})
        self._gen_counter = 0
        self._reload_lock: Optional[asyncio.Lock] = None
        self._current = self._build_generation(family, n, seed)
        self.reloads = 0

    # ------------------------------------------------------------------
    def _build_generation(self, family: str, n: int, seed: int) -> Generation:
        """Build a fully-warmed generation (synchronous: callers put it
        on a worker thread when traffic is live)."""
        network = Network.from_family(
            family,
            n,
            seed=seed,
            engine=self._engine,
            store=self._store,
            tables=self._tables,
        )
        self._gen_counter += 1
        gen = Generation(
            self._gen_counter, network, family, broker_opts=self._broker_opts
        )
        for scheme in self.schemes:
            # Pre-build tables and warm the compiled engine so the
            # first request after (re)load pays nothing.
            router = gen.router(scheme)
            router.resolve_engine()
        return gen

    def _evolve_generation(self, old: Generation, delta) -> Generation:
        """Build the successor generation from a topology delta
        (synchronous; runs on a worker thread while the old generation
        keeps serving).  The new network descends from the old one
        through :meth:`~repro.api.Network.evolve` — carrying memory
        artifacts and repairing the oracle incrementally where the
        protocol applies — and its schemes/engines pre-warm exactly
        like a snapshot reload's."""
        network = old.network.evolve(delta)
        self._gen_counter += 1
        gen = Generation(
            self._gen_counter, network, old.family,
            broker_opts=self._broker_opts,
        )
        for scheme in self.schemes:
            router = gen.router(scheme)
            router.resolve_engine()
        return gen

    @property
    def current(self) -> Generation:
        """The generation new requests land on."""
        return self._current

    def admit(self) -> Generation:
        """Admit one request: pin it to the current generation.

        Synchronous and await-free, so on the event loop the returned
        generation cannot be swapped out between the read and the
        in-flight increment.
        """
        gen = self._current
        gen.inflight += 1
        return gen

    def release(self, gen: Generation) -> None:
        """Finish one admitted request."""
        gen.inflight -= 1
        gen.note_release()

    # ------------------------------------------------------------------
    async def reload(
        self,
        family: Optional[str] = None,
        n: Optional[int] = None,
        seed: Optional[int] = None,
        delta: Any = None,
        on_built: Optional[Callable[[], None]] = None,
    ) -> Tuple[Generation, Generation]:
        """Swap in a new graph snapshot without dropping requests.

        Builds the replacement generation on a worker thread (old
        traffic keeps flowing), swaps the current pointer, retires the
        old generation, and waits for it to drain.  Reloads serialize:
        concurrent ``/reload`` requests apply one at a time.

        Args:
            family/n/seed: snapshot parameters; ``None`` keeps the
                current generation's value.
            delta: a :class:`~repro.graph.delta.GraphDelta` to fold
                into the *current* generation's network through
                :meth:`~repro.api.Network.evolve` instead of building
                a fresh snapshot (mutually exclusive with
                family/n/seed).
            on_built: test hook invoked right after the swap, before
                the old generation's drain completes.

        Returns:
            ``(old_generation, new_generation)`` — the old one fully
            drained.
        """
        if self._reload_lock is None:
            self._reload_lock = asyncio.Lock()
        async with self._reload_lock:
            old = self._current
            loop = asyncio.get_running_loop()
            if delta is not None:
                if any(v is not None for v in (family, n, seed)):
                    raise ProtocolError(
                        "pass either 'delta' or 'family'/'n'/'seed', "
                        "not both"
                    )
                new_gen = await loop.run_in_executor(
                    None, self._evolve_generation, old, delta
                )
            else:
                target = (
                    family if family is not None else old.family,
                    n if n is not None else old.network.n,
                    seed if seed is not None else old.network.seed,
                )
                new_gen = await loop.run_in_executor(
                    None, self._build_generation, *target
                )
            # The swap itself is atomic on the loop: no await between
            # retiring the old generation and installing the new one.
            self._current = new_gen
            old.retired = True
            old.broker.close()
            self.reloads += 1
            if on_built is not None:
                on_built()
            await old.drain()
            return old, new_gen
