"""``repro.serve``: the long-lived asyncio routing daemon.

The "millions of users" tier over :mod:`repro.api`: one process owns a
warm :class:`~repro.api.Network` per loaded graph snapshot (mounted on
the :mod:`repro.store` artifact cache), serves concurrent route /
workload / stats requests over a versioned JSON wire protocol
(``repro-serve/1``), **coalesces** concurrent route requests into
engine-sized batches executed through the compiled vectorized engine —
bit-identical to direct library calls — and swaps graph snapshots
gracefully (``POST /reload``) without dropping a single in-flight
request.

Layers:

* :mod:`repro.serve.protocol` — the wire schema (requests, responses,
  structured errors);
* :mod:`repro.serve.broker` — the batching broker (coalescing,
  bounded-queue admission control);
* :mod:`repro.serve.lifecycle` — graph-snapshot generations and the
  drain-then-release reload protocol;
* :mod:`repro.serve.app` — the asyncio HTTP daemon (endpoints,
  request gate, foreground/background runners);
* :mod:`repro.serve.client` — the synchronous client the ``repro
  client`` CLI and the tests drive the daemon with.
"""

from repro.serve.app import (
    DEFAULT_PORT,
    ServeApp,
    ServeConfig,
    ServeDaemon,
    build_app,
    serve_async,
    serve_forever,
    start_server,
)
from repro.serve.broker import BatchBroker, OverloadedError
from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.lifecycle import Generation, Lifecycle
from repro.serve.protocol import (
    ProtocolError,
    ReloadRequest,
    RouteManyRequest,
    SCHEMA,
    ServedRoute,
    WorkloadRequest,
)

__all__ = [
    "BatchBroker",
    "DEFAULT_PORT",
    "Generation",
    "Lifecycle",
    "OverloadedError",
    "ProtocolError",
    "ReloadRequest",
    "RouteManyRequest",
    "SCHEMA",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServeDaemon",
    "ServedRoute",
    "WorkloadRequest",
    "build_app",
    "serve_async",
    "serve_forever",
    "start_server",
]
