"""The batching broker: coalesce concurrent requests into engine batches.

The compiled vectorized engine (:mod:`repro.runtime.engine`) amortizes
per-batch setup across every pair in a batch — a frontier sweep over
one 500-pair batch costs far less than 500 single-pair sweeps.  The
broker exploits that under concurrency: route requests from many
clients enqueue their pairs per ``(scheme)`` key, a drainer task per
key collects whatever accumulated (after a short linger window that
lets simultaneous requests pile up), executes it as **one**
``Router.route_many`` call on a worker thread, and demultiplexes the
per-pair results back to each waiting request's future.

Because every pair's journey is independent of the rest of its batch
(the engine advances each packet by its own tables; no cross-pair
state), the coalesced results are bit-identical to what a direct
library ``route_many`` call would return for the same pair — the serve
differential tests and the CI smoke job assert exactly this.

Admission control is a bounded queue: when the pending-pair backlog for
a key would exceed ``max_queue``, :meth:`BatchBroker.submit` raises
:class:`OverloadedError` immediately (the daemon maps it to HTTP 429)
instead of letting latency grow without bound.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Sequence, Tuple

from repro.exceptions import ReproError

#: default coalescing window in seconds: long enough for simultaneous
#: clients to pile into one batch, short enough to be invisible next to
#: routing time
DEFAULT_LINGER_S = 0.002

#: default largest coalesced batch handed to the engine at once
DEFAULT_MAX_BATCH = 1024

#: default bound on the pending-pair backlog per scheme key
DEFAULT_MAX_QUEUE = 8192


class OverloadedError(ReproError):
    """Raised by :meth:`BatchBroker.submit` when the pending backlog
    would exceed the queue bound (the daemon sheds the request with
    HTTP 429 rather than queueing unboundedly)."""


class BatchBroker:
    """Per-key request coalescing over one executor function.

    Args:
        execute: ``(key, pairs) -> results`` — routes one coalesced
            batch; called on a worker thread (the event loop's default
            executor), one in-flight call per key at a time, so a
            plain :class:`repro.api.router.Router` session per key is
            safe without locks.
        max_batch: largest batch handed to ``execute`` at once.
        max_queue: pending-pair bound per key; beyond it submissions
            are shed with :class:`OverloadedError`.
        linger_s: coalescing window — how long a drainer waits for
            more pairs before executing a sub-``max_batch`` batch
            (``0`` executes whatever is queued immediately).
    """

    def __init__(
        self,
        execute: Callable[[str, List[Tuple[int, int]]], Sequence[Any]],
        max_batch: int = DEFAULT_MAX_BATCH,
        max_queue: int = DEFAULT_MAX_QUEUE,
        linger_s: float = DEFAULT_LINGER_S,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        self._execute = execute
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.linger_s = linger_s
        self._queues: Dict[
            str, Deque[Tuple[Tuple[int, int], asyncio.Future]]
        ] = {}
        self._drainers: Dict[str, asyncio.Task] = {}
        self._closed = False
        # counters (exposed via stats())
        self.submitted_pairs = 0
        self.shed_pairs = 0
        self.executed_batches = 0
        self.executed_pairs = 0
        self.max_coalesced = 0
        self.exec_seconds = 0.0

    # ------------------------------------------------------------------
    async def submit(
        self, key: str, pairs: Sequence[Tuple[int, int]]
    ) -> List[Any]:
        """Enqueue ``pairs`` under ``key`` and await their results.

        Results come back in input order.  Pairs from concurrent
        submissions under the same key may execute in one coalesced
        batch; results are identical either way.

        Raises:
            OverloadedError: when the backlog bound would be exceeded
                (no partial admission: either every pair queues or
                none does).
            ReproError: whatever the execute function raised for the
                batch containing a submitted pair.
        """
        if self._closed:
            raise OverloadedError("broker is closed (generation retired)")
        queue = self._queues.setdefault(key, deque())
        if len(queue) + len(pairs) > self.max_queue:
            self.shed_pairs += len(pairs)
            raise OverloadedError(
                f"pending backlog for {key!r} is full "
                f"({len(queue)} + {len(pairs)} > {self.max_queue} pairs)"
            )
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in pairs]
        for pair, future in zip(pairs, futures):
            queue.append((pair, future))
        self.submitted_pairs += len(pairs)
        if key not in self._drainers:
            self._drainers[key] = loop.create_task(self._drain(key))
        return list(await asyncio.gather(*futures))

    async def _drain(self, key: str) -> None:
        """Serve ``key``'s queue until it runs dry, one coalesced batch
        per executor call."""
        loop = asyncio.get_running_loop()
        queue = self._queues[key]
        try:
            while queue:
                if self.linger_s and len(queue) < self.max_batch:
                    # The linger window: give concurrent requests a
                    # beat to land so they ride the same engine batch.
                    await asyncio.sleep(self.linger_s)
                batch = [
                    queue.popleft()
                    for _ in range(min(self.max_batch, len(queue)))
                ]
                pairs = [pair for pair, _ in batch]
                t0 = loop.time()
                try:
                    results = await loop.run_in_executor(
                        None, self._execute, key, pairs
                    )
                except Exception as exc:  # demux the failure too
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(exc)
                    continue
                finally:
                    self.exec_seconds += loop.time() - t0
                    self.executed_batches += 1
                self.executed_pairs += len(batch)
                self.max_coalesced = max(self.max_coalesced, len(batch))
                for (_, future), result in zip(batch, results):
                    if not future.done():
                        future.set_result(result)
        finally:
            # Synchronous with the emptiness check (no await between),
            # so a fresh submit either sees this drainer or spawns one.
            self._drainers.pop(key, None)

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every queued pair has been served (the graceful-
        reload path: the retired generation's broker drains before its
        network is released)."""
        while self._drainers:
            await asyncio.gather(
                *list(self._drainers.values()), return_exceptions=True
            )

    def close(self) -> None:
        """Refuse new submissions (already-queued pairs still drain)."""
        self._closed = True

    @property
    def pending_pairs(self) -> int:
        """Pairs currently queued across every key."""
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for the ``/stats`` endpoint."""
        return {
            "submitted_pairs": self.submitted_pairs,
            "executed_pairs": self.executed_pairs,
            "executed_batches": self.executed_batches,
            "max_coalesced": self.max_coalesced,
            "pending_pairs": self.pending_pairs,
            "shed_pairs": self.shed_pairs,
            "exec_seconds": self.exec_seconds,
        }
