"""The asyncio HTTP daemon: endpoints, admission control, lifecycle.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams — no
framework dependency — speaking the ``repro-serve/1`` JSON protocol
(:mod:`repro.serve.protocol`).  Endpoints:

==============  ======  ====================================================
path            method  meaning
==============  ======  ====================================================
``/healthz``    GET     liveness + current generation descriptor
``/schemes``    GET     the scheme registry (names, bounds, params)
``/stats``      GET     live session/store/broker/server counters
``/route``      POST    one pair (coalesced with concurrent traffic)
``/route_many`` POST    a pair batch (coalesced with concurrent traffic)
``/workload``   POST    generate + route a named workload server-side
``/reload``     POST    graceful graph-snapshot swap (zero dropped)
==============  ======  ====================================================

Admission control is two-layered: the request gate sheds with HTTP 429
once ``max_inflight`` requests are being served, and the per-generation
:class:`~repro.serve.broker.BatchBroker` sheds when its pending-pair
backlog is full.  Shedding is immediate — the daemon never queues
unboundedly.

Run it in the foreground with :func:`serve_forever` (the ``repro
serve`` CLI) or in a background thread with :class:`ServeDaemon`
(tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.api import UnknownSchemeError, all_specs, scheme_names
from repro.exceptions import ReproError
from repro.serve.broker import OverloadedError
from repro.serve.lifecycle import Lifecycle
from repro.serve.protocol import (
    ProtocolError,
    ReloadRequest,
    RouteManyRequest,
    SCHEMA,
    WorkloadRequest,
    encode_body,
    encode_results,
    encode_summary,
    parse_request,
)

#: default daemon port (unassigned in the IANA registry)
DEFAULT_PORT = 8577

#: largest accepted request body (a 1M-pair batch is ~16 MiB of JSON;
#: anything bigger should be a workload request)
MAX_BODY_BYTES = 32 << 20

_MAX_HEADER_LINE = 64 << 10


@dataclass
class ServeConfig:
    """Everything needed to stand up a daemon.

    Attributes mirror the ``repro serve`` CLI flags; ``schemes`` lists
    the pre-built schemes (first entry is the default for requests that
    omit one).
    """

    family: str = "random"
    n: int = 64
    seed: int = 0
    engine: str = "auto"
    tables: str = "auto"
    schemes: Tuple[str, ...] = ("stretch6",)
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    max_inflight: int = 256
    max_batch: int = 1024
    max_queue: int = 8192
    linger_s: float = 0.002
    store: Any = "auto"

    def broker_opts(self) -> Dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_queue": self.max_queue,
            "linger_s": self.linger_s,
        }


@dataclass
class ServerCounters:
    """Daemon-level request accounting (the ``server`` stats block)."""

    requests: int = 0
    errors: int = 0
    shed: int = 0
    by_endpoint: Dict[str, int] = field(default_factory=dict)

    def note(self, endpoint: str) -> None:
        self.requests += 1
        self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "by_endpoint": dict(sorted(self.by_endpoint.items())),
        }


class ServeApp:
    """The daemon's request dispatcher over one :class:`Lifecycle`."""

    def __init__(self, lifecycle: Lifecycle, max_inflight: int = 256):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.lifecycle = lifecycle
        self.max_inflight = max_inflight
        self.active = 0
        self.counters = ServerCounters()
        self.started = time.time()

    # ------------------------------------------------------------------
    # endpoint handlers (each returns the response document)
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        gen = self.lifecycle.current
        return {
            "status": "ok",
            "generation": gen.id,
            "graph": gen.describe(),
            "default_scheme": self.lifecycle.default_scheme,
            "uptime_s": time.time() - self.started,
        }

    def _schemes(self) -> Dict[str, Any]:
        return {
            "default": self.lifecycle.default_scheme,
            "loaded": list(self.lifecycle.schemes),
            "schemes": [
                {
                    "name": spec.name,
                    "stretch_bound": spec.bound_text,
                    "name_independent": spec.name_independent,
                    "params": [p.name for p in spec.params],
                    "summary": spec.summary,
                }
                for spec in all_specs()
            ],
        }

    def _stats(self) -> Dict[str, Any]:
        gen = self.lifecycle.current
        return {
            "generation": gen.id,
            "graph": gen.describe(),
            "reloads": self.lifecycle.reloads,
            "session": gen.session_stats().as_dict(),
            "broker": gen.broker.stats(),
            "server": self.counters.as_dict(),
            "uptime_s": time.time() - self.started,
        }

    def _resolve_scheme(self, requested: Optional[str]) -> str:
        """Map a request's scheme field to a registry name, surfacing
        the registry's choices on a typo."""
        name = requested or self.lifecycle.default_scheme
        try:
            from repro.api import get_spec

            get_spec(name)
        except UnknownSchemeError as exc:
            raise ProtocolError(
                str(exc), code="unknown-scheme", choices=scheme_names()
            )
        return name

    async def _route_many(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        req = RouteManyRequest.from_doc(doc)
        scheme = self._resolve_scheme(req.scheme)
        gen = self.lifecycle.admit()
        try:
            gen.check_pairs(req.pairs)
            results = await gen.broker.submit(scheme, req.pairs)
            return encode_results(results, gen.id)
        finally:
            self.lifecycle.release(gen)

    async def _workload(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        req = WorkloadRequest.from_doc(doc)
        scheme = self._resolve_scheme(req.scheme)
        gen = self.lifecycle.admit()
        try:
            loop = asyncio.get_running_loop()
            if req.scenario is not None:
                summary = await loop.run_in_executor(
                    None, gen.serve_scenario, req.scenario, scheme,
                )
            else:
                summary = await loop.run_in_executor(
                    None, gen.serve_workload, req.kind, req.count, req.seed,
                    scheme,
                )
            body = {"generation": gen.id, "summary": encode_summary(summary)}
            return body
        finally:
            self.lifecycle.release(gen)

    async def _reload(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        req = ReloadRequest.from_doc(doc)
        old, new = await self.lifecycle.reload(
            family=req.family, n=req.n, seed=req.seed, delta=req.delta
        )
        body = {
            "reloaded": True,
            "old_generation": old.id,
            "generation": new.id,
            "graph": new.describe(),
        }
        if req.delta is not None:
            repair = new.network.stats().repair
            body["delta"] = {
                "ops": req.delta.op_names(),
                "network_generation": new.network.generation,
                "repair": (
                    None if repair is None else repair.as_dict()
                ),
            }
        return body

    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes]:
        """Handle one request; returns ``(status, response_bytes)``."""
        endpoint = f"{method} {path}"
        self.counters.note(endpoint)
        try:
            if self.active >= self.max_inflight:
                self.counters.shed += 1
                raise ProtocolError(
                    f"daemon at max_inflight={self.max_inflight}; retry",
                    code="server-busy",
                )
            self.active += 1
            try:
                doc = parse_request(body)
                if (method, path) == ("GET", "/healthz"):
                    return 200, encode_body(self._healthz())
                if (method, path) == ("GET", "/schemes"):
                    return 200, encode_body(self._schemes())
                if (method, path) == ("GET", "/stats"):
                    return 200, encode_body(self._stats())
                if (method, path) in (("POST", "/route"),
                                      ("POST", "/route_many")):
                    return 200, encode_body(await self._route_many(doc))
                if (method, path) == ("POST", "/workload"):
                    return 200, encode_body(await self._workload(doc))
                if (method, path) == ("POST", "/reload"):
                    return 200, encode_body(await self._reload(doc))
                raise ProtocolError(
                    f"no endpoint {method} {path}", code="unknown-endpoint"
                )
            finally:
                self.active -= 1
        except OverloadedError as exc:
            self.counters.shed += 1
            err = ProtocolError(str(exc), code="server-busy")
            return err.status, encode_body(err.body())
        except ProtocolError as exc:
            self.counters.errors += 1
            return exc.status, encode_body(exc.body())
        except ReproError as exc:
            # Library-level rejection of otherwise well-formed input
            # (e.g. a workload kind needing an oracle): a client error.
            self.counters.errors += 1
            err = ProtocolError(str(exc), code="bad-request")
            return err.status, encode_body(err.body())
        except Exception as exc:  # daemon bug: surface, don't hang
            self.counters.errors += 1
            err = ProtocolError(
                f"{type(exc).__name__}: {exc}", code="server-error"
            )
            return err.status, encode_body(err.body())


# ----------------------------------------------------------------------
# the HTTP/1.1 transport
# ----------------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP request; ``None`` on a cleanly closed connection.

    Raises:
        ProtocolError: for malformed request lines / oversized bodies.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        if len(line) > _MAX_HEADER_LINE:
            raise ProtocolError("oversized header line")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("malformed Content-Length")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"request body of {length} bytes refused")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response_bytes(status: int, payload: bytes, close: bool) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


async def handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection (keep-alive honored)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ProtocolError, asyncio.IncompleteReadError):
                err = ProtocolError("malformed HTTP request")
                writer.write(
                    _response_bytes(err.status, encode_body(err.body()), True)
                )
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, body = request
            status, payload = await app.dispatch(method, path, body)
            close = headers.get("connection", "").lower() == "close"
            writer.write(_response_bytes(status, payload, close))
            await writer.drain()
            if close:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_server(
    app: ServeApp, host: str, port: int
) -> asyncio.AbstractServer:
    """Bind and start serving; returns the listening server (query
    ``server.sockets[0].getsockname()`` for the bound port)."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(app, r, w), host, port
    )


def build_app(config: ServeConfig) -> ServeApp:
    """Construct the lifecycle (building the initial generation and
    pre-warming its schemes) and wrap it in an app."""
    lifecycle = Lifecycle(
        config.family,
        config.n,
        seed=config.seed,
        engine=config.engine,
        tables=config.tables,
        schemes=config.schemes,
        broker_opts=config.broker_opts(),
        store=config.store,
    )
    return ServeApp(lifecycle, max_inflight=config.max_inflight)


async def serve_async(
    config: ServeConfig,
    app: Optional[ServeApp] = None,
    ready: Optional[Callable[[ServeApp, int], None]] = None,
) -> None:
    """Run the daemon until cancelled."""
    if app is None:
        loop = asyncio.get_running_loop()
        app = await loop.run_in_executor(None, build_app, config)
    server = await start_server(app, config.host, config.port)
    port = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(app, port)
    async with server:
        await server.serve_forever()


def serve_forever(config: ServeConfig) -> int:
    """Foreground entry point (the ``repro serve`` CLI)."""

    def announce(app: ServeApp, port: int) -> None:
        gen = app.lifecycle.current
        print(
            f"repro-serve listening on http://{config.host}:{port} "
            f"({SCHEMA})"
        )
        print(
            f"graph      : {gen.family} n={gen.network.n} "
            f"seed={gen.network.seed} (generation {gen.id})"
        )
        print(
            f"schemes    : {', '.join(app.lifecycle.schemes)} "
            f"(default {app.lifecycle.default_scheme})"
        )
        store = gen.network.resolved_store()
        print(f"store      : {store.root if store is not None else 'off'}",
              flush=True)

    try:
        asyncio.run(serve_async(config, ready=announce))
    except KeyboardInterrupt:
        print("repro-serve: shutting down")
    return 0


class ServeDaemon:
    """A daemon hosted on a background thread (tests and benchmarks).

    Usage::

        daemon = ServeDaemon(ServeConfig(n=48, port=0))
        daemon.start()                     # blocks until bound
        client = ServeClient(port=daemon.port)
        ...
        daemon.stop()

    ``port=0`` binds an ephemeral port, reported via :attr:`port`.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.app: Optional[ServeApp] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 60.0) -> "ServeDaemon":
        """Build the app, bind, and serve on a fresh thread; returns
        once the daemon accepts connections."""
        if self._thread is not None:
            raise RuntimeError("daemon already started")

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop

            def ready(app: ServeApp, port: int) -> None:
                self.app = app
                self.port = port
                self._ready.set()

            try:
                # Build synchronously on this thread: serve_async's
                # executor path is for the foreground CLI.
                app = build_app(self.config)
                loop.run_until_complete(
                    serve_async(self.config, app=app, ready=ready)
                )
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                pass
            except BaseException as exc:  # startup failure: report it
                self._error = exc
                self._ready.set()
            finally:
                # Let cancelled connection handlers run their cleanup
                # before the loop closes (no destroyed-pending warnings).
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("serve daemon did not come up in time")
        if self._error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._error!r}"
            ) from self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel the serving task and join the thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        def shutdown() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        try:
            loop.call_soon_threadsafe(shutdown)
        except RuntimeError:  # loop already closed
            pass
        thread.join(timeout)
        self._thread = None
