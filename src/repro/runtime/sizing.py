"""Bit-size accounting for headers and tables (Section 1.1.4).

The paper's compactness claims are stated in bits: headers are
``O(log^2 n)`` bits, tables ``~O(sqrt(n))`` entries of ``O(polylog)``
bits each.  This module assigns every header/table value a principled
bit size so experiments can check the claims:

* identifiers (names, vertex ids, ports, block indices):
  ``ceil(log2 n)`` bits;
* tree addresses: two identifier fields;
* mode/enumeration tags: 3 bits;
* booleans: 1 bit; small counters: ``ceil(log2 (k+1))`` treated as
  identifiers for simplicity;
* containers: sum of elements plus an identifier-sized length field.

Objects may implement ``header_bits(n) -> int`` to control their own
accounting; the structured labels in :mod:`repro.rtz` do.
"""

from __future__ import annotations

import math
from typing import Any


def id_bits(n: int) -> int:
    """Bits needed for one identifier in a universe of size ``n``."""
    return max(1, (max(n, 2) - 1).bit_length())


#: bits charged for a mode / enum tag
MODE_BITS = 3


def bit_size(value: Any, n: int) -> int:
    """Recursively estimate the encoded size of ``value`` in bits.

    Args:
        value: header field or table entry.
        n: network size (sets identifier width).

    Raises:
        TypeError: for values with no defined encoding.
    """
    if value is None:
        return 1
    custom = getattr(value, "header_bits", None)
    if callable(custom):
        return custom(n)
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return id_bits(n)
    if isinstance(value, float):
        return 32
    if isinstance(value, str):
        return MODE_BITS
    if isinstance(value, (list, tuple)):
        return id_bits(n) + sum(bit_size(x, n) for x in value)
    if isinstance(value, dict):
        return id_bits(n) + sum(
            bit_size(k, n) + bit_size(v, n) for k, v in value.items()
        )
    raise TypeError(f"no bit-size rule for {type(value).__name__}")


def header_bits(header: dict, n: int) -> int:
    """Total bit size of a packet header (field tags included)."""
    total = 0
    for key, value in header.items():
        total += MODE_BITS  # field tag
        total += bit_size(value, n)
    return total


def entries_to_bits(entries: int, n: int, entry_fields: int = 2) -> int:
    """Convert a table-entry count to bits assuming ``entry_fields``
    identifier-sized fields per entry (key + value by default)."""
    return entries * entry_fields * id_bits(n)


def log2_squared(n: int) -> float:
    """``log2(n)^2`` — the header budget the paper allows."""
    return math.log2(max(n, 2)) ** 2
