"""Churn timelines: topology mutation interleaved with traffic.

The paper's model is a *dynamic* network — links reweight, fail and
recover, nodes arrive and depart — while traffic keeps flowing and
names stay stable (the TINN promise).  This module makes that regime a
first-class workload:

* a **timeline** is a JSON document describing epochs, each routing a
  batch of pairs and (optionally) preceded by mutation events::

      {"version": 1, "seed": 7, "workload": "mixed",
       "epochs": [
         {"pairs": 200},
         {"pairs": 200, "events": [{"op": "reweight"},
                                   {"op": "link_down"}]},
         {"pairs": 100, "events": [
             {"op": "link_up", "tail": 0, "head": 5, "weight": 2.5}]}]}

  Bare events (``{"op": "reweight"}``) are materialized against the
  *current* generation's graph from the timeline seed — link removals
  and departures only pick candidates that preserve strong
  connectivity — while events carrying explicit fields are applied
  verbatim;

* :func:`run_timeline` walks the epochs: it folds each epoch's events
  into a :class:`~repro.graph.delta.GraphDelta`, steps the network
  through :meth:`~repro.api.network.Network.evolve` (incremental
  oracle repair where the protocol applies), rebuilds the scheme on
  the new generation, routes the epoch's workload with
  :func:`~repro.runtime.traffic.run_workload`, and merges everything
  into one :class:`~repro.runtime.traffic.TrafficSummary` whose
  :attr:`~repro.runtime.traffic.TrafficSummary.epochs` rows record the
  per-epoch stretch trajectory.

Everything is seeded: event materialization draws from
``random.Random(f"{seed}|churn|{i}")`` and epoch pairs from
``random.Random(f"{seed}|pairs|{i}")``, both independent of the shard
worker count, so a timeline run is bit-identical across ``--jobs``
values (the same guarantee static workloads already make).

Exposed on the command line as ``repro traffic --events FILE``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.delta import (
    OP_NAMES,
    Arrival,
    Departure,
    DeltaOp,
    GraphDelta,
    LinkDown,
    LinkUp,
    Reweight,
)
from repro.graph.digraph import Digraph
from repro.graph.scc import is_strongly_connected
from repro.runtime.traffic import (
    WORKLOAD_KINDS,
    EpochStretch,
    TrafficSummary,
    generate_workload,
    run_workload,
)

#: current timeline document version
TIMELINE_VERSION = 1

#: new-node degree for materialized arrivals (capped by n)
ARRIVAL_DEGREE = 3

#: weight grid for materialized reweights/link-ups/arrivals.  Two
#: decimals keep distinct path sums separated by >= 0.01 — far above
#: the vectorized sweep's tie window — so the incremental repair
#: certificates (:mod:`repro.graph.repair`) are airtight.
_WEIGHT_LO, _WEIGHT_HI = 0.5, 8.0


def _random_weight(rng: random.Random) -> float:
    return round(rng.uniform(_WEIGHT_LO, _WEIGHT_HI), 2)


# ----------------------------------------------------------------------
# timeline documents
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EpochSpec:
    """One timeline epoch: optional mutation events, then traffic.

    Attributes:
        pairs: journeys to route in this epoch.
        events: event documents applied (in order) before the epoch's
            traffic; each is ``{"op": <name>, ...}`` with optional
            explicit fields (see :func:`materialize_event`).
        workload: per-epoch workload-kind override (``None`` uses the
            timeline default).
    """

    pairs: int
    events: Tuple[Mapping[str, Any], ...] = ()
    workload: Optional[str] = None


@dataclass(frozen=True)
class Timeline:
    """A parsed churn timeline (see the module docstring's format)."""

    seed: int = 0
    workload: str = "mixed"
    epochs: Tuple[EpochSpec, ...] = ()

    @classmethod
    def from_doc(cls, doc: Any) -> "Timeline":
        """Validate and parse a timeline document.

        Raises:
            GraphError: for malformed documents.
        """
        if not isinstance(doc, dict):
            raise GraphError("timeline must be a JSON object")
        version = doc.get("version", TIMELINE_VERSION)
        if version != TIMELINE_VERSION:
            raise GraphError(
                f"unsupported timeline version {version!r} "
                f"(expected {TIMELINE_VERSION})"
            )
        seed = doc.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise GraphError(f"timeline 'seed' must be an integer, got {seed!r}")
        workload = doc.get("workload", "mixed")
        if workload not in WORKLOAD_KINDS:
            raise GraphError(
                f"unknown timeline workload {workload!r}; "
                f"choose from {WORKLOAD_KINDS}"
            )
        raw_epochs = doc.get("epochs")
        if not isinstance(raw_epochs, list) or not raw_epochs:
            raise GraphError("timeline needs a non-empty 'epochs' list")
        epochs = []
        for i, ep in enumerate(raw_epochs):
            if not isinstance(ep, dict):
                raise GraphError(f"epochs[{i}] must be an object")
            pairs = ep.get("pairs", 0)
            if isinstance(pairs, bool) or not isinstance(pairs, int) or pairs < 0:
                raise GraphError(
                    f"epochs[{i}].pairs must be a non-negative integer, "
                    f"got {pairs!r}"
                )
            kind = ep.get("workload")
            if kind is not None and kind not in WORKLOAD_KINDS:
                raise GraphError(
                    f"epochs[{i}].workload {kind!r} unknown; "
                    f"choose from {WORKLOAD_KINDS}"
                )
            events = ep.get("events", [])
            if not isinstance(events, list):
                raise GraphError(f"epochs[{i}].events must be a list")
            for j, ev in enumerate(events):
                if not isinstance(ev, dict) or ev.get("op") not in OP_NAMES:
                    raise GraphError(
                        f"epochs[{i}].events[{j}] must be an object with "
                        f"'op' in {OP_NAMES}, got {ev!r}"
                    )
            epochs.append(EpochSpec(
                pairs=pairs, events=tuple(events), workload=kind,
            ))
        return cls(seed=seed, workload=workload, epochs=tuple(epochs))

    def to_doc(self) -> Dict[str, Any]:
        """The plain-JSON document form (round-trips through
        :meth:`from_doc`)."""
        epochs = []
        for ep in self.epochs:
            doc: Dict[str, Any] = {"pairs": ep.pairs}
            if ep.events:
                doc["events"] = [dict(ev) for ev in ep.events]
            if ep.workload is not None:
                doc["workload"] = ep.workload
            epochs.append(doc)
        return {
            "version": TIMELINE_VERSION,
            "seed": self.seed,
            "workload": self.workload,
            "epochs": epochs,
        }

    @property
    def total_events(self) -> int:
        """Event documents across every epoch."""
        return sum(len(ep.events) for ep in self.epochs)


def load_timeline(source) -> Timeline:
    """Load a timeline from a file path, a JSON string, or a dict.

    Raises:
        GraphError: for unreadable files or malformed documents.
    """
    if isinstance(source, Timeline):
        return source
    if isinstance(source, dict):
        return Timeline.from_doc(source)
    text = str(source)
    if not text.lstrip().startswith("{"):
        try:
            text = Path(text).read_text(encoding="utf-8")
        except OSError as exc:
            raise GraphError(f"cannot read timeline file: {exc}")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise GraphError(f"timeline is not valid JSON: {exc}")
    return Timeline.from_doc(doc)


# ----------------------------------------------------------------------
# event materialization
# ----------------------------------------------------------------------

def _keeps_strong_connectivity(g: Digraph, op: DeltaOp) -> bool:
    return is_strongly_connected(g.apply_delta(GraphDelta((op,))))


def _pick_reweight(g: Digraph, rng: random.Random) -> Reweight:
    edges = list(g.edges())
    e = edges[rng.randrange(len(edges))]
    return Reweight(e.tail, e.head, _random_weight(rng))


def materialize_event(
    g: Digraph, spec: Mapping[str, Any], rng: random.Random
) -> DeltaOp:
    """Turn one event document into a concrete :class:`DeltaOp`.

    Events carrying explicit fields are taken verbatim (validation
    happens in ``apply_delta``); bare events draw their operands from
    ``rng`` against the current graph ``g``.  Materialized link
    removals and departures only pick candidates whose application
    keeps the graph strongly connected; when no candidate qualifies
    (or the graph has no room for a ``link_up``), the event degrades
    to a random reweight so the timeline always stays routable.

    Raises:
        GraphError: for unknown op names or malformed explicit fields.
    """
    op = spec.get("op")
    if op == "reweight":
        if "tail" in spec:
            weight = spec.get("weight")
            if weight is None:
                factor = float(spec.get("factor", 1.0))
                weight = g.weight(int(spec["tail"]), int(spec["head"])) * factor
            return Reweight(int(spec["tail"]), int(spec["head"]), float(weight))
        return _pick_reweight(g, rng)
    if op == "link_down":
        if "tail" in spec:
            return LinkDown(int(spec["tail"]), int(spec["head"]))
        edges = list(g.edges())
        rng.shuffle(edges)
        for e in edges:
            cand = LinkDown(e.tail, e.head)
            if _keeps_strong_connectivity(g, cand):
                return cand
        return _pick_reweight(g, rng)
    if op == "link_up":
        if "tail" in spec:
            return LinkUp(
                int(spec["tail"]), int(spec["head"]),
                float(spec.get("weight", 1.0)),
            )
        free = [
            (u, v)
            for u in range(g.n)
            for v in range(g.n)
            if u != v and not g.has_edge(u, v)
        ]
        if not free:
            return _pick_reweight(g, rng)
        u, v = free[rng.randrange(len(free))]
        return LinkUp(u, v, _random_weight(rng))
    if op == "departure":
        if "node" in spec:
            return Departure(int(spec["node"]))
        nodes = list(range(g.n))
        rng.shuffle(nodes)
        for x in nodes:
            if g.n <= 2:
                break
            cand = Departure(x)
            if _keeps_strong_connectivity(g, cand):
                return cand
        return _pick_reweight(g, rng)
    if op == "arrival":
        if "out" in spec or "in" in spec:
            return GraphDelta.arrival(
                spec.get("out", []), spec.get("in", [])
            ).ops[0]
        k = min(ARRIVAL_DEGREE, g.n)
        out_targets = rng.sample(range(g.n), k)
        in_targets = rng.sample(range(g.n), k)
        return Arrival(
            tuple((v, _random_weight(rng)) for v in out_targets),
            tuple((t, _random_weight(rng)) for t in in_targets),
        )
    raise GraphError(f"unknown event op {op!r}; expected one of {OP_NAMES}")


def materialize_delta(
    g: Digraph, events: Sequence[Mapping[str, Any]], rng: random.Random
) -> Optional[GraphDelta]:
    """Fold an epoch's event documents into one :class:`GraphDelta`.

    Events materialize sequentially against the intermediate graphs
    (the same composition order ``apply_delta`` and the repair
    protocol use), so a bare ``link_down`` never targets an edge an
    earlier op in the same epoch already removed.  Returns ``None``
    for an empty event list.
    """
    ops = []
    cur = g
    for spec in events:
        op = materialize_event(cur, spec, rng)
        ops.append(op)
        cur = cur.apply_delta(GraphDelta((op,)))
    return GraphDelta(tuple(ops)) if ops else None


# ----------------------------------------------------------------------
# the timeline runner
# ----------------------------------------------------------------------

def run_timeline(
    network,
    scheme: str,
    timeline,
    params: Optional[Dict[str, Any]] = None,
    hop_limit: Optional[int] = None,
    engine: str = "auto",
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    tables: str = "auto",
) -> Tuple[TrafficSummary, Any]:
    """Run a churn timeline end to end.

    Per epoch: materialize the epoch's events into a delta, evolve the
    network (``network.evolve`` — incremental oracle repair where the
    protocol applies), rebuild the scheme on the new generation, and
    route the epoch's workload.  The per-epoch summaries merge into a
    single :class:`TrafficSummary` carrying one
    :class:`~repro.runtime.traffic.EpochStretch` row per epoch.

    Args:
        network: the generation-1 :class:`~repro.api.network.Network`.
        scheme: registered scheme label to rebuild each generation.
        timeline: a :class:`Timeline` (or anything
            :func:`load_timeline` accepts).
        params: scheme build parameters (e.g. ``{"k": 2}``).
        hop_limit / engine / shards / shard_size / jobs / executor /
            tables: forwarded to :func:`~repro.runtime.traffic.run_workload`
            per epoch, with the same bit-identical-across-``jobs``
            guarantee.

    Returns:
        ``(summary, final_network)`` — the merged summary and the last
        generation's network (its :meth:`~repro.api.network.Network.stats`
        carry the final repair accounting).
    """
    timeline = load_timeline(timeline)
    params = dict(params or {})
    net = network
    parts = []
    for i, epoch in enumerate(timeline.epochs):
        delta = None
        if epoch.events:
            delta = materialize_delta(
                net.graph, epoch.events,
                random.Random(f"{timeline.seed}|churn|{i}"),
            )
        if delta is not None:
            net = net.evolve(delta)
        kind = epoch.workload or timeline.workload
        workload = generate_workload(
            kind, net.n, epoch.pairs,
            rng=random.Random(f"{timeline.seed}|pairs|{i}"),
            oracle=net.oracle(),
        )
        built = net.build_scheme(scheme, **params)
        part = run_workload(
            built, workload, oracle=net.oracle(), hop_limit=hop_limit,
            engine=engine, shards=shards, shard_size=shard_size, jobs=jobs,
            executor=executor, tables=tables,
        )
        if delta is None:
            repair = "none"
        else:
            stats = net.stats().repair
            repair = (
                "incremental" if stats is not None and stats.incremental
                else "rebuild"
            )
        row = EpochStretch(
            index=i,
            generation=net.generation,
            pairs=part.pairs,
            events=tuple(delta.op_names()) if delta is not None else (),
            repair=repair,
            mean_stretch=part.mean_stretch,
            max_stretch=part.max_stretch,
            worst_pair=part.worst_pair,
        )
        parts.append(replace(part, epochs=(row,)))
    return TrafficSummary.merge(parts), net


__all__ = [
    "ARRIVAL_DEGREE",
    "EpochSpec",
    "TIMELINE_VERSION",
    "Timeline",
    "load_timeline",
    "materialize_delta",
    "materialize_event",
    "run_timeline",
]
