"""Compiled vectorized routing execution (the batched fast path).

The hop-by-hop :class:`~repro.runtime.simulator.Simulator` is the
reference semantics: one ``forward()`` call per packet per hop, dict
headers, Python everywhere.  Under traffic that is the last scalar
bottleneck — a workload of ``10^5`` journeys executes ``10^6+``
interpreted forwarding decisions.

This module *compiles* a built scheme's forwarding function into dense
numpy decision tables over the graph's CSR snapshot and executes whole
workloads as **frontier sweeps**: every in-flight packet advances one
hop per sweep via array gathers, so the per-hop cost is a few vector
operations amortized over the batch instead of a Python call.

The compilation contract
------------------------

A scheme opts in by implementing
:meth:`~repro.runtime.scheme.RoutingScheme.compile_tables`, returning a
:class:`CompiledRoutes`:

* ``tables`` — a :class:`StepTables` giving the *within-leg* decision
  function as dense next-vertex arrays (ports resolved through
  ``head_of_port`` at compile time);
* ``plan(sources, dests)`` — a :class:`JourneyPlan` describing each
  journey as two legs (outbound, acknowledgment), each a short list of
  :class:`Segment` s (e.g. ``s -> dictionary node``, then
  ``dictionary node -> t``) with the per-segment forwarded-header bit
  size precomputed from representative headers.

This covers every scheme whose headers, between segment boundaries,
carry a *structurally constant* payload (a fixed set of fields whose
bit sizes do not depend on the packet's position).  Schemes with
growing headers — the ExStretch/PolynomialStretch waypoint stacks —
return ``None`` and transparently fall back to the Python simulator.

Bit-identical by construction
-----------------------------

The executor reproduces the reference semantics *exactly* — paths,
float costs (same per-packet addition order), hop counts, max header
bits, and :class:`~repro.exceptions.HopLimitExceeded` behaviour — and
``tests/test_engine_differential.py`` asserts that equivalence for
every registered scheme on every workload kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import HopLimitExceeded, RoutingError, TableLookupError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import Digraph
from repro.graph.limits import dense_table_max_n
from repro.runtime.simulator import (  # noqa: F401  (re-export)
    EXECUTION_ENGINES,
    LegTrace,
    RoundtripTrace,
)

#: substrate leg phases (mirror repro.rtz.routing's DIRECT/TO_CENTER/
#: DOWN_TREE leg modes)
PHASE_DIRECT = 0
PHASE_UP = 1
PHASE_DOWN = 2

#: Compiled-table families: ``dense`` is the original (n, n) matrices,
#: ``blocked`` the sparse/blocked structures (BlockedNextHop /
#: LandmarkTables), ``auto`` picks by graph size.
TABLE_FAMILIES = ("auto", "dense", "blocked")


def resolve_table_family(tables: str, n: int) -> str:
    """Resolve a ``--tables`` value to a concrete family.

    ``auto`` selects ``dense`` while the graph fits under the
    dense-table threshold (:func:`repro.graph.limits.dense_table_max_n`)
    and ``blocked`` beyond it, so big graphs never trip
    :class:`~repro.exceptions.TableTooLargeError` by default.
    """
    if tables not in TABLE_FAMILIES:
        raise RoutingError(
            f"unknown table family {tables!r}; expected one of "
            f"{', '.join(TABLE_FAMILIES)}"
        )
    if tables == "auto":
        return "dense" if n <= dense_table_max_n() else "blocked"
    return tables


# ----------------------------------------------------------------------
# step tables: the compiled within-leg decision function
# ----------------------------------------------------------------------
class StepTables:
    """Vectorized within-leg forwarding over dense next-vertex arrays.

    Subclasses implement :meth:`begin_phase` (the leg's first decision
    mode, mirroring the scheme's ``begin_leg``) and :meth:`step` (one
    forwarding decision for a batch of packets *not yet at their
    target*)."""

    def begin_phase(self, at: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Initial phase for packets starting a leg at ``at`` toward
        ``target`` (int8 array)."""
        raise NotImplementedError

    def step(
        self, at: np.ndarray, target: np.ndarray, phase: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One decision per packet: ``(next_vertex, new_phase)``.

        Raises:
            TableLookupError: when any packet has no table entry (the
                compiled analogue of the scheme's own lookup errors).
        """
        raise NotImplementedError


class DenseNextHop(StepTables):
    """Single-matrix step tables: ``next[u, target]`` is the next
    vertex (full-table schemes; also the looping-stub test double)."""

    def __init__(self, next_vertex: np.ndarray):
        self.next_vertex = next_vertex

    def begin_phase(self, at: np.ndarray, target: np.ndarray) -> np.ndarray:
        return np.zeros(at.shape[0], dtype=np.int8)

    def step(
        self, at: np.ndarray, target: np.ndarray, phase: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        nxt = self.next_vertex[at, target]
        if (nxt < 0).any():
            bad = int(np.flatnonzero(nxt < 0)[0])
            raise TableLookupError(
                f"no compiled next hop at vertex {int(at[bad])} toward "
                f"{int(target[bad])}"
            )
        return nxt, phase


class BlockedNextHop(StepTables):
    """Row-blocked first-hop step tables (the sparse ``DenseNextHop``).

    The ``(n, n)`` next-vertex matrix is split into row blocks of
    ``block_rows`` sources each; block ``b`` holds rows
    ``[b * block_rows, min(n, (b + 1) * block_rows))``.  Blocks are
    built by streaming source-blocked APSP (never materializing the
    full matrix) and persisted individually, so later processes
    memory-map exactly the blocks they touch.  Lookups gather per
    block but return results in the original batch order, so the
    decision function — values, phases, and the first-failure error —
    is bit-identical to :class:`DenseNextHop`.
    """

    def __init__(self, n: int, block_rows: int, blocks: Sequence[np.ndarray]):
        self.n = int(n)
        self.block_rows = int(block_rows)
        self.blocks = list(blocks)

    def nbytes(self) -> int:
        """Bytes resident across all currently-loaded blocks."""
        return sum(int(blk.nbytes) for blk in self.blocks)

    def begin_phase(self, at: np.ndarray, target: np.ndarray) -> np.ndarray:
        return np.zeros(at.shape[0], dtype=np.int8)

    def step(
        self, at: np.ndarray, target: np.ndarray, phase: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        nxt = np.empty(at.shape[0], dtype=np.int64)
        bidx = at // self.block_rows
        for b in np.unique(bidx):
            sel = bidx == b
            block = self.blocks[int(b)]
            nxt[sel] = block[at[sel] - int(b) * self.block_rows, target[sel]]
        if (nxt < 0).any():
            bad = int(np.flatnonzero(nxt < 0)[0])
            raise TableLookupError(
                f"no compiled next hop at vertex {int(at[bad])} toward "
                f"{int(target[bad])}"
            )
        return nxt, phase


def compile_blocked_next_hop(
    oracle, block_rows: Optional[int] = None
) -> BlockedNextHop:
    """Build :class:`BlockedNextHop` tables from a distance oracle,
    one source block at a time.

    Each block is computed via :meth:`DistanceOracle.first_hop_block`
    (peak memory ``O(block_rows * n)``) and, when the artifact store is
    active, persisted under its own ``first-hop-block`` key — keyed by
    (graph content hash, block geometry) — so warm processes
    memory-map blocks instead of recomputing them.
    """
    from repro.graph.blocked import default_block_rows

    n = oracle.n
    g = oracle.graph
    if block_rows is None:
        block_rows = default_block_rows(n)
    block_rows = max(1, min(max(n, 1), int(block_rows)))

    store = None
    ghash = None
    if g.frozen:
        from repro.store import default_store, graph_content_hash

        store = default_store()
        if store is not None:
            ghash = graph_content_hash(g)

    blocks: List[np.ndarray] = []
    for lo in range(0, n, block_rows):
        hi = min(n, lo + block_rows)
        store_key = None
        if store is not None:
            from repro.store import StoreKey

            store_key = StoreKey(
                "first-hop-block",
                1,
                {"graph": ghash, "rows": block_rows, "lo": lo},
            )
            entry = store.get(store_key)
            if entry is not None and entry.arrays["first"].shape == (hi - lo, n):
                blocks.append(entry.arrays["first"])
                continue
        t0 = time.perf_counter()
        block = oracle.first_hop_block(lo, hi)
        block.flags.writeable = False
        if store_key is not None:
            store.put(
                store_key,
                {"first": block},
                meta={"lo": lo, "rows": block_rows},
                build_seconds=time.perf_counter() - t0,
            )
        blocks.append(block)
    return BlockedNextHop(n, block_rows, blocks)


class SubstrateStepTables(StepTables):
    """Compiled Lemma 2 substrate legs (direct / up-tree / down-tree).

    Attributes:
        direct_next: ``(n, n)`` int32 — next vertex on the direct
            (cluster) path toward ``target``, ``-1`` when ``at`` has no
            direct entry.
        up_next: ``(n, C)`` int32 — next vertex toward landmark
            (column = landmark index), ``-1`` at the landmark itself.
        down_next: ``(n, n)`` int32 — next vertex from ``at`` toward
            ``target`` inside ``OutTree(center(target))``; only slots
            on canonical ``center -> target`` paths are populated.
        center_of: ``(n,)`` int32 — ``a(v)``, the home landmark vertex.
        center_idx: ``(n,)`` int32 — column of ``a(v)`` in ``up_next``.
        has_direct: ``(n, n)`` bool — the cluster membership test
            ``begin_leg`` makes.
    """

    def __init__(
        self,
        direct_next: np.ndarray,
        up_next: np.ndarray,
        down_next: np.ndarray,
        center_of: np.ndarray,
        center_idx: np.ndarray,
        has_direct: np.ndarray,
    ):
        self.direct_next = direct_next
        self.up_next = up_next
        self.down_next = down_next
        self.center_of = center_of
        self.center_idx = center_idx
        self.has_direct = has_direct

    def begin_phase(self, at: np.ndarray, target: np.ndarray) -> np.ndarray:
        direct = (at == target) | self.has_direct[at, target]
        at_center = at == self.center_of[target]
        return np.where(
            direct, PHASE_DIRECT, np.where(at_center, PHASE_DOWN, PHASE_UP)
        ).astype(np.int8)

    def step(
        self, at: np.ndarray, target: np.ndarray, phase: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # TO_CENTER flips to DOWN_TREE on arrival at the landmark,
        # within the same decision (exactly as leg_step does).
        center = self.center_of[target]
        phase = np.where(
            (phase == PHASE_UP) & (at == center), PHASE_DOWN, phase
        ).astype(np.int8)
        nxt = np.where(
            phase == PHASE_DIRECT,
            self.direct_next[at, target],
            np.where(
                phase == PHASE_UP,
                self.up_next[at, self.center_idx[target]],
                self.down_next[at, target],
            ),
        )
        if (nxt < 0).any():
            bad = int(np.flatnonzero(nxt < 0)[0])
            raise TableLookupError(
                f"no compiled substrate entry at vertex {int(at[bad])} "
                f"toward {int(target[bad])} (phase {int(phase[bad])})"
            )
        return nxt, phase


def _sorted_pair_lookup(
    keys: np.ndarray,
    values: np.ndarray,
    at: np.ndarray,
    target: np.ndarray,
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Query a sorted ``(u * n + v) -> next`` table by binary search.

    Returns ``(next_vertices, found)`` with ``-1`` where the pair has
    no entry — the sparse analogue of gathering a ``-1``-filled dense
    matrix at ``[at, target]``.
    """
    queries = at.astype(np.int64) * np.int64(n) + target.astype(np.int64)
    if keys.shape[0] == 0:
        return (
            np.full(queries.shape[0], -1, dtype=np.int64),
            np.zeros(queries.shape[0], dtype=bool),
        )
    pos = np.searchsorted(keys, queries)
    np.minimum(pos, keys.shape[0] - 1, out=pos)
    found = keys[pos] == queries
    nxt = np.where(found, values[pos], -1).astype(np.int64)
    return nxt, found


class LandmarkTables(StepTables):
    """Landmark-factored substrate step tables with o(n²) memory.

    Same decision function as :class:`SubstrateStepTables` — the paper's
    Lemma 2 direct / up-tree / down-tree factorization — but the two
    quadratic matrices become sorted sparse pair tables:

    * ``direct`` holds one entry per cluster membership (Θ(n·√n) for
      the balanced RTZ clusters), replacing both ``direct_next`` and
      ``has_direct``;
    * ``down`` holds one entry per (ancestor, descendant) slot on a
      canonical ``center(v) -> v`` path — at most one entry per
      (vertex on path, v), i.e. O(n · avg path length);
    * ``up_next`` stays dense at ``(n, C)`` = O(n·√n).

    Every lookup returns the identical int32 next-vertex values the
    dense tables hold, so routing is bit-identical across families.
    """

    def __init__(
        self,
        n: int,
        direct_keys: np.ndarray,
        direct_next: np.ndarray,
        down_keys: np.ndarray,
        down_next: np.ndarray,
        up_next: np.ndarray,
        center_of: np.ndarray,
        center_idx: np.ndarray,
    ):
        self.n = int(n)
        self.direct_keys = direct_keys
        self.direct_next = direct_next
        self.down_keys = down_keys
        self.down_next = down_next
        self.up_next = up_next
        self.center_of = center_of
        self.center_idx = center_idx

    def nbytes(self) -> int:
        """Bytes across every table (the o(n²) claim is testable)."""
        return sum(
            int(arr.nbytes)
            for arr in (
                self.direct_keys, self.direct_next, self.down_keys,
                self.down_next, self.up_next, self.center_of,
                self.center_idx,
            )
        )

    def begin_phase(self, at: np.ndarray, target: np.ndarray) -> np.ndarray:
        _, has_direct = _sorted_pair_lookup(
            self.direct_keys, self.direct_next, at, target, self.n
        )
        direct = (at == target) | has_direct
        at_center = at == self.center_of[target]
        return np.where(
            direct, PHASE_DIRECT, np.where(at_center, PHASE_DOWN, PHASE_UP)
        ).astype(np.int8)

    def step(
        self, at: np.ndarray, target: np.ndarray, phase: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        center = self.center_of[target]
        phase = np.where(
            (phase == PHASE_UP) & (at == center), PHASE_DOWN, phase
        ).astype(np.int8)
        direct_nxt, _ = _sorted_pair_lookup(
            self.direct_keys, self.direct_next, at, target, self.n
        )
        down_nxt, _ = _sorted_pair_lookup(
            self.down_keys, self.down_next, at, target, self.n
        )
        nxt = np.where(
            phase == PHASE_DIRECT,
            direct_nxt,
            np.where(
                phase == PHASE_UP,
                self.up_next[at, self.center_idx[target]],
                down_nxt,
            ),
        )
        if (nxt < 0).any():
            bad = int(np.flatnonzero(nxt < 0)[0])
            raise TableLookupError(
                f"no compiled substrate entry at vertex {int(at[bad])} "
                f"toward {int(target[bad])} (phase {int(phase[bad])})"
            )
        return nxt, phase


def compile_landmark_tables(substrate) -> LandmarkTables:
    """Compile a substrate into :class:`LandmarkTables` (the blocked /
    sparse family counterpart of :func:`compile_substrate_tables`).

    Cached on the substrate (``_compiled_landmark_tables``) and, when
    the artifact store is active, persisted under a
    ``landmark-tables`` key so warm processes memory-map the sorted
    pair tables instead of rebuilding them.
    """
    cached = getattr(substrate, "_compiled_landmark_tables", None)
    if cached is not None:
        return cached
    g: Digraph = substrate.metric.oracle.graph
    n = g.n
    centers = substrate.centers

    from repro.store import StoreKey, default_store, graph_content_hash

    store = default_store()
    store_key = None
    if store is not None and g.frozen:
        store_key = StoreKey(
            "landmark-tables",
            1,
            {"graph": graph_content_hash(g), "centers": [int(c) for c in centers]},
        )
        entry = store.get(store_key)
        if entry is not None and entry.arrays["up_next"].shape == (
            n, len(centers),
        ):
            a = entry.arrays
            tables = LandmarkTables(
                n, a["direct_keys"], a["direct_next"],
                a["down_keys"], a["down_next"], a["up_next"],
                a["center_of"], a["center_idx"],
            )
            substrate._compiled_landmark_tables = tables
            return tables
    t0 = time.perf_counter()
    cindex = {c: i for i, c in enumerate(centers)}

    direct_pairs: List[Tuple[int, int]] = []
    for u in range(n):
        for v, port in substrate._direct[u].items():
            direct_pairs.append((u * n + v, g.head_of_port(u, port)))
    direct_keys, direct_next = _pack_pair_table(direct_pairs)

    up_next = np.full((n, len(centers)), -1, dtype=np.int32)
    for ci, c in enumerate(centers):
        in_tree = substrate._in_trees[c]
        for u in range(n):
            if u == c:
                continue
            up_next[u, ci] = g.head_of_port(u, in_tree.next_port(u))

    center_of = np.empty(n, dtype=np.int32)
    center_idx = np.empty(n, dtype=np.int32)
    down_pairs: List[Tuple[int, int]] = []
    parents = {
        c: substrate.metric.oracle.forward_tree_parents(c) for c in centers
    }
    for v in range(n):
        c = substrate.assignment.home_center(v)
        center_of[v] = c
        center_idx[v] = cindex[c]
        par = parents[c]
        x = v
        while x != c:
            p = par[x]
            down_pairs.append((p * n + v, x))
            x = p

    down_keys, down_next = _pack_pair_table(down_pairs)
    tables = LandmarkTables(
        n, direct_keys, direct_next, down_keys, down_next,
        up_next, center_of, center_idx,
    )
    substrate._compiled_landmark_tables = tables
    if store_key is not None:
        store.put(
            store_key,
            {
                "direct_keys": direct_keys,
                "direct_next": direct_next,
                "down_keys": down_keys,
                "down_next": down_next,
                "up_next": up_next,
                "center_of": center_of,
                "center_idx": center_idx,
            },
            meta={"centers": len(centers)},
            build_seconds=time.perf_counter() - t0,
        )
    return tables


def _pack_pair_table(
    pairs: List[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``(key, next_vertex)`` pairs into aligned lookup arrays.

    Keys are unique by construction (one entry per table slot), so the
    sorted form is canonical — store round-trips rehydrate the exact
    same bytes.
    """
    if not pairs:
        return (
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32),
        )
    arr = np.asarray(pairs, dtype=np.int64)
    order = np.argsort(arr[:, 0], kind="stable")
    keys = np.ascontiguousarray(arr[order, 0])
    values = np.ascontiguousarray(arr[order, 1].astype(np.int32))
    return keys, values


def compile_substrate_tables(substrate, tables: str = "dense") -> StepTables:
    """Compile an :class:`~repro.rtz.routing.RTZStretch3` substrate's
    three forwarding structures into step tables.

    ``tables="dense"`` yields the original :class:`SubstrateStepTables`
    (three ``(n, n)`` arrays); ``tables="blocked"`` dispatches to
    :func:`compile_landmark_tables`, the o(n²) landmark-factored form.
    Both make identical decisions — the family only changes memory.

    The dense result is cached on the substrate object, so every scheme
    sharing one substrate (stretch-6, its variant, wild names, the RTZ
    baseline — deduplicated by :func:`repro.rtz.routing.shared_substrate`)
    compiles it exactly once.

    When the artifact store is active (:func:`repro.store.default_store`)
    the six dense arrays are persisted keyed by ``(graph content hash,
    landmark set)`` — a pure function of those two, so no seed enters
    the key — and later compiles (other processes, pool shard workers
    rehydrating a pickled scheme) memory-map them instead of rebuilding.
    """
    if tables == "blocked":
        return compile_landmark_tables(substrate)
    cached = getattr(substrate, "_compiled_step_tables", None)
    if cached is not None:
        return cached
    g: Digraph = substrate.metric.oracle.graph
    n = g.n
    centers = substrate.centers

    from repro.store import StoreKey, default_store, graph_content_hash

    store = default_store()
    store_key = None
    if store is not None and g.frozen:
        store_key = StoreKey(
            "substrate-tables",
            1,
            {"graph": graph_content_hash(g), "centers": [int(c) for c in centers]},
        )
        entry = store.get(store_key)
        if entry is not None and entry.arrays["direct_next"].shape == (n, n):
            a = entry.arrays
            tables = SubstrateStepTables(
                a["direct_next"], a["up_next"], a["down_next"],
                a["center_of"], a["center_idx"], a["has_direct"],
            )
            substrate._compiled_step_tables = tables
            return tables
    t0 = time.perf_counter()
    cindex = {c: i for i, c in enumerate(centers)}

    direct_next = np.full((n, n), -1, dtype=np.int32)
    has_direct = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v, port in substrate._direct[u].items():
            direct_next[u, v] = g.head_of_port(u, port)
            has_direct[u, v] = True

    up_next = np.full((n, len(centers)), -1, dtype=np.int32)
    for ci, c in enumerate(centers):
        in_tree = substrate._in_trees[c]
        for u in range(n):
            if u == c:
                continue
            up_next[u, ci] = g.head_of_port(u, in_tree.next_port(u))

    # Down-tree entries are only ever consulted on canonical
    # center(v) -> v paths, so populate exactly those.
    center_of = np.empty(n, dtype=np.int32)
    center_idx = np.empty(n, dtype=np.int32)
    down_next = np.full((n, n), -1, dtype=np.int32)
    parents = {
        c: substrate.metric.oracle.forward_tree_parents(c) for c in centers
    }
    for v in range(n):
        c = substrate.assignment.home_center(v)
        center_of[v] = c
        center_idx[v] = cindex[c]
        par = parents[c]
        x = v
        while x != c:
            p = par[x]
            down_next[p, v] = x
            x = p

    tables = SubstrateStepTables(
        direct_next, up_next, down_next, center_of, center_idx, has_direct
    )
    substrate._compiled_step_tables = tables
    if store_key is not None:
        store.put(
            store_key,
            {
                "direct_next": direct_next,
                "up_next": up_next,
                "down_next": down_next,
                "center_of": center_of,
                "center_idx": center_idx,
                "has_direct": has_direct,
            },
            meta={"centers": len(centers)},
            build_seconds=time.perf_counter() - t0,
        )
    return tables


# ----------------------------------------------------------------------
# journey plans
# ----------------------------------------------------------------------
@dataclass
class Segment:
    """One within-leg stage of a batch of journeys.

    Attributes:
        target: ``(B,)`` int64 per-packet segment endpoint; ``-1``
            marks packets that skip this segment entirely (e.g. no
            dictionary detour needed).
        fwd_bits: ``(B,)`` int64 bit size of the header attached to
            every ``Forward`` decision made during this segment.
    """

    target: np.ndarray
    fwd_bits: np.ndarray


@dataclass
class JourneyPlan:
    """A compiled batch: two legs (outbound, acknowledgment), each a
    list of segments, plus each leg's *initial* header bit size (the
    header as injected / as returned by the destination host, measured
    before any forwarding decision)."""

    legs: List[List[Segment]]
    leg_init_bits: List[np.ndarray]


class CompiledRoutes:
    """What :meth:`RoutingScheme.compile_tables` returns.

    Args:
        graph: the scheme's (frozen) digraph.
        tables: the within-leg step tables.
        planner: ``(sources, dest_vertices) -> JourneyPlan`` over int64
            vertex arrays.
        family: which table family these routes were compiled with
            (``"dense"`` or ``"blocked"``; surfaced in stats).
    """

    def __init__(
        self,
        graph: Digraph,
        tables: StepTables,
        planner,
        family: str = "dense",
    ):
        self.graph = graph
        self.tables = tables
        self._planner = planner
        self.family = family

    def plan(self, sources: np.ndarray, dests: np.ndarray) -> JourneyPlan:
        """Compile a batch of (source, dest-vertex) pairs."""
        return self._planner(sources, dests)


def constant_bits(value: int, batch: int) -> np.ndarray:
    """Broadcast one representative-header bit size over a batch."""
    return np.full(batch, int(value), dtype=np.int64)


class DenseKnowledge:
    """Planner inputs for the dictionary-based schemes, dense form:
    an ``(n, n)`` bool "holds the destination's label locally" matrix
    plus the (already sub-quadratic) block-pointer tables."""

    def __init__(
        self, knows: np.ndarray, block_ptr: np.ndarray, bov: np.ndarray
    ):
        self._knows = knows
        self.block_ptr = block_ptr
        self.block_of_vertex = bov

    def local(self, sources: np.ndarray, dests: np.ndarray) -> np.ndarray:
        """Whether each source holds its destination's label locally."""
        return self._knows[sources, dests]

    def dict_node(self, sources: np.ndarray, dests: np.ndarray) -> np.ndarray:
        """The dictionary holder each source consults for its dest."""
        return self.block_ptr[sources, self.block_of_vertex[dests]]


class SparseKnowledge(DenseKnowledge):
    """Same planner answers from a sorted membership-key set instead of
    the ``(n, n)`` bool matrix: each (node, known destination) pair is
    one int64 key, Θ(n·√n) total for the paper's table sizes."""

    def __init__(
        self, n: int, keys: np.ndarray, block_ptr: np.ndarray, bov: np.ndarray
    ):
        super().__init__(None, block_ptr, bov)
        self.n = int(n)
        self.keys = keys

    def local(self, sources: np.ndarray, dests: np.ndarray) -> np.ndarray:
        queries = (
            sources.astype(np.int64) * np.int64(self.n)
            + dests.astype(np.int64)
        )
        if self.keys.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        pos = np.searchsorted(self.keys, queries)
        np.minimum(pos, self.keys.shape[0] - 1, out=pos)
        return self.keys[pos] == queries


def compile_knowledge(
    n: int,
    label_tables: Sequence[Sequence],
    resolve,
    block_ptr_tables: Sequence[dict],
    num_blocks: int,
    block_of_vertex,
    tables: str = "dense",
) -> DenseKnowledge:
    """Planner inputs shared by the dictionary-based schemes.

    Args:
        n: vertex count.
        label_tables: per-node key->label dicts whose *keys* mean
            "this node holds the destination's label locally" (the
            Fig. 3 cases 1 and 3 tables, in any keying).
        resolve: key -> destination vertex (the scheme's name/wild
            resolution).
        block_ptr_tables: per-node block-index -> holder-vertex dicts
            (case 2).
        num_blocks: size of the block space.
        block_of_vertex: vertex -> responsible block index.
        tables: ``"dense"`` builds the ``(n, n)`` bool matrix;
            ``"blocked"`` builds the sorted-key :class:`SparseKnowledge`
            (identical answers, Θ(table entries) memory).

    Returns:
        A :class:`DenseKnowledge` (or :class:`SparseKnowledge`).
    """
    block_ptr = np.full((n, num_blocks), -1, dtype=np.int64)
    for u in range(n):
        for b, holder in block_ptr_tables[u].items():
            block_ptr[u, b] = holder
    bov = np.array([block_of_vertex(v) for v in range(n)], dtype=np.int64)
    if tables == "blocked":
        raw_keys = [
            u * n + resolve(key)
            for table in label_tables
            for u in range(n)
            for key in table[u]
        ]
        keys = np.unique(np.asarray(raw_keys, dtype=np.int64))
        return SparseKnowledge(n, keys, block_ptr, bov)
    knows = np.zeros((n, n), dtype=bool)
    for table in label_tables:
        for u in range(n):
            for key in table[u]:
                knows[u, resolve(key)] = True
    return DenseKnowledge(knows, block_ptr, bov)


# ----------------------------------------------------------------------
# the frontier-sweep executor
# ----------------------------------------------------------------------
def run_roundtrips(
    compiled: CompiledRoutes,
    pairs: Sequence[Tuple[int, int]],
    hop_limit: int,
    scheme_name: str = "?",
) -> List[RoundtripTrace]:
    """Execute a batch of roundtrips against compiled tables.

    All in-flight packets advance one hop per sweep; per-packet leg
    cost/hop/header-bit accounting reproduces the Python simulator
    bit-for-bit (see the module docstring).

    Args:
        compiled: the scheme's compiled routes.
        pairs: ``(source_vertex, dest_vertex)`` pairs.
        hop_limit: per-leg hop budget (same contract as the simulator:
            a leg may make at most ``hop_limit + 1`` forwarding
            decisions before :class:`HopLimitExceeded`).
        scheme_name: label used in error messages.

    Returns:
        One :class:`RoundtripTrace` per pair, in input order.
    """
    batch = len(pairs)
    if batch == 0:
        return []
    sources = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=batch)
    dests = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=batch)
    plan = compiled.plan(sources, dests)
    tables = compiled.tables
    # Edge weights are charged through the O(m) sparse pair lookup (the
    # dense matrix would reintroduce the n² memory the blocked tables
    # remove); values and accumulation order are identical.
    csr = CSRGraph.from_digraph(compiled.graph)

    num_legs = len(plan.legs)
    # Flatten the per-leg segment lists into (num_segs, batch) matrices;
    # leg_of_seg maps a flat segment index to its leg (with a sentinel
    # row so "past the last segment" reads as leg ``num_legs``).
    target_mat = np.stack(
        [seg.target for leg in plan.legs for seg in leg]
    ).astype(np.int64)
    bits_mat = np.stack(
        [seg.fwd_bits for leg in plan.legs for seg in leg]
    ).astype(np.int64)
    leg_of_seg = np.array(
        [li for li, leg in enumerate(plan.legs) for _ in leg] + [num_legs],
        dtype=np.int64,
    )
    init_bits = np.stack(plan.leg_init_bits).astype(np.int64)
    num_segs = target_mat.shape[0]

    pidx = np.arange(batch, dtype=np.int64)
    at = sources.copy()
    cur_seg = np.zeros(batch, dtype=np.int64)
    phase = np.zeros(batch, dtype=np.int8)
    active = np.ones(batch, dtype=bool)

    leg_cost = np.zeros(batch, dtype=np.float64)
    leg_hops = np.zeros(batch, dtype=np.int64)
    leg_bits = init_bits[0].copy()

    out_cost = np.zeros((num_legs, batch), dtype=np.float64)
    out_bits = np.zeros((num_legs, batch), dtype=np.int64)
    leg_start = np.zeros((num_legs, batch), dtype=np.int64)
    leg_start[0] = sources

    # Path log: per sweep, (packet indices, leg ids, vertices stepped to).
    log_idx: List[np.ndarray] = []
    log_leg: List[np.ndarray] = []
    log_vert: List[np.ndarray] = []

    # Aim every packet at its first segment.
    first_tgt = target_mat[0]
    present = first_tgt >= 0
    if present.any():
        phase[present] = tables.begin_phase(at[present], first_tgt[present])

    # Per-leg destination (the Python simulator's ``expect_end``): the
    # last segment of each leg is always present, so hop-limit errors
    # can name the failing *leg*'s endpoints exactly as _run_leg does.
    leg_end = np.stack([leg[-1].target for leg in plan.legs])
    failed = np.full(batch, -1, dtype=np.int64)  # leg id at failure

    while active.any():
        # --- hop budget: the simulator allows a leg at most
        # ``hop_limit + 1`` forwarding decisions; a packet that has
        # forwarded hop_limit + 1 times without delivering is a loop
        # (even if its last hop happened to land on the target).  The
        # sequential reference raises for the first *input-order* pair
        # that loops (later pairs never run), so park failed packets
        # and keep sweeping — the raise below picks the same pair.
        over = active & (leg_hops > hop_limit)
        if over.any():
            failed[over] = leg_of_seg[cur_seg[over]]
            active &= ~over
            if not active.any():
                break
        # --- segment/leg transitions: packets sitting at their current
        # segment's endpoint (or whose segment is absent for them)
        # advance without consuming a hop, exactly like the scheme's
        # same-call header reprocessing at a dictionary node.
        while True:
            tgt = target_mat[np.minimum(cur_seg, num_segs - 1), pidx]
            pend = active & ((tgt == -1) | (tgt == at))
            if not pend.any():
                break
            old_leg = leg_of_seg[cur_seg[pend]]
            cur_seg[pend] += 1
            new_leg = leg_of_seg[cur_seg[pend]]
            crossed = new_leg != old_leg
            if crossed.any():
                cp = pidx[pend][crossed]
                out_cost[old_leg[crossed], cp] = leg_cost[cp]
                out_bits[old_leg[crossed], cp] = leg_bits[cp]
                finished = new_leg[crossed] >= num_legs
                done_p = cp[finished]
                active[done_p] = False
                open_p = cp[~finished]
                if open_p.shape[0]:
                    olids = new_leg[crossed][~finished]
                    leg_cost[open_p] = 0.0
                    leg_hops[open_p] = 0
                    leg_bits[open_p] = init_bits[olids, open_p]
                    leg_start[olids, open_p] = at[open_p]
            # Re-aim packets that advanced into a live, present segment.
            moved = pend & active
            if moved.any():
                tgt2 = target_mat[cur_seg[moved], pidx[moved]]
                aim_p = pidx[moved][tgt2 >= 0]
                if aim_p.shape[0]:
                    phase[aim_p] = tables.begin_phase(
                        at[aim_p], target_mat[cur_seg[aim_p], aim_p]
                    )
        if not active.any():
            break
        # --- one synchronized hop for every in-flight packet.
        ap = pidx[active]
        tgt = target_mat[cur_seg[ap], ap]
        nxt, new_phase = tables.step(at[ap], tgt, phase[ap])
        leg_cost[ap] += csr.pair_weights(at[ap], nxt)
        leg_hops[ap] += 1
        leg_bits[ap] = np.maximum(leg_bits[ap], bits_mat[cur_seg[ap], ap])
        log_idx.append(ap)
        log_leg.append(leg_of_seg[cur_seg[ap]])
        log_vert.append(nxt.astype(np.int64))
        at[ap] = nxt
        phase[ap] = new_phase

    if (failed >= 0).any():
        p = int(np.flatnonzero(failed >= 0)[0])
        li = int(failed[p])
        raise HopLimitExceeded(
            f"scheme {scheme_name} exceeded {hop_limit} hops routing "
            f"from {int(leg_start[li, p])} to {int(leg_end[li, p])} (loop?)"
        )
    return _assemble_traces(
        batch, num_legs, leg_start, out_cost, out_bits,
        log_idx, log_leg, log_vert,
    )


def _assemble_traces(
    batch: int,
    num_legs: int,
    leg_start: np.ndarray,
    out_cost: np.ndarray,
    out_bits: np.ndarray,
    log_idx: List[np.ndarray],
    log_leg: List[np.ndarray],
    log_vert: List[np.ndarray],
) -> List[RoundtripTrace]:
    """Reconstruct per-packet hop-by-hop traces from the sweep log."""
    if log_idx:
        idx = np.concatenate(log_idx)
        leg = np.concatenate(log_leg)
        vert = np.concatenate(log_vert)
    else:
        idx = np.empty(0, dtype=np.int64)
        leg = np.empty(0, dtype=np.int64)
        vert = np.empty(0, dtype=np.int64)
    paths: List[List[List[int]]] = [
        [[int(leg_start[li, p])] for li in range(num_legs)]
        for p in range(batch)
    ]
    if idx.shape[0]:
        # Stable sort by (packet, leg) keeps sweep order in each group.
        order = np.argsort(idx * num_legs + leg, kind="stable")
        idx, leg, vert = idx[order], leg[order], vert[order]
        keys = idx * num_legs + leg
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [keys.shape[0]]))
        for s, e in zip(starts, ends):
            paths[int(idx[s])][int(leg[s])].extend(vert[s:e].tolist())

    traces = []
    for p in range(batch):
        legs = [
            LegTrace(
                path=paths[p][li],
                cost=float(out_cost[li, p]),
                max_header_bits=int(out_bits[li, p]),
            )
            for li in range(num_legs)
        ]
        traces.append(RoundtripTrace(outbound=legs[0], inbound=legs[1]))
    return traces
