"""Runtime substrate (systems S16-S18): headers with bit accounting,
the routing-scheme interface, the hop-by-hop simulator, and the
measurement helpers."""

from repro.runtime.scheme import (
    Decision,
    Deliver,
    Forward,
    Header,
    NEW_PACKET,
    RETURN_PACKET,
    RoutingScheme,
)
from repro.runtime.codec import BitReader, BitWriter, CodecError, HeaderCodec
from repro.runtime.engine import (
    EXECUTION_ENGINES,
    CompiledRoutes,
    DenseNextHop,
    JourneyPlan,
    Segment,
    SubstrateStepTables,
    run_roundtrips,
)
from repro.runtime.simulator import LegTrace, RoundtripTrace, Simulator
from repro.runtime.sizing import (
    MODE_BITS,
    bit_size,
    entries_to_bits,
    header_bits,
    id_bits,
    log2_squared,
)
from repro.runtime.stats import (
    StretchReport,
    TableReport,
    measure_stretch,
    measure_tables,
)
from repro.runtime.traffic import (
    WORKLOAD_KINDS,
    TrafficSummary,
    Workload,
    adversarial_pairs,
    generate_workload,
    hotspot_pairs,
    mixed_pairs,
    run_workload,
    uniform_pairs,
)

__all__ = [
    "RoutingScheme",
    "Forward",
    "Deliver",
    "Decision",
    "Header",
    "NEW_PACKET",
    "RETURN_PACKET",
    "Simulator",
    "LegTrace",
    "RoundtripTrace",
    "EXECUTION_ENGINES",
    "CompiledRoutes",
    "DenseNextHop",
    "SubstrateStepTables",
    "JourneyPlan",
    "Segment",
    "run_roundtrips",

    "HeaderCodec",
    "BitWriter",
    "BitReader",
    "CodecError",
    "bit_size",
    "header_bits",
    "id_bits",
    "entries_to_bits",
    "log2_squared",
    "MODE_BITS",
    "StretchReport",
    "TableReport",
    "measure_stretch",
    "measure_tables",
    "Workload",
    "TrafficSummary",
    "WORKLOAD_KINDS",
    "uniform_pairs",
    "hotspot_pairs",
    "adversarial_pairs",
    "mixed_pairs",
    "generate_workload",
    "run_workload",
]
