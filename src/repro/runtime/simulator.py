"""Hop-by-hop network simulator.

Executes a :class:`~repro.runtime.scheme.RoutingScheme`'s forwarding
function exactly as the network would: the packet sits at a vertex, the
local algorithm sees only (local table, header) and returns a port; the
*network* (this simulator) moves the packet along that port.  The
simulator also:

* accounts path cost (sum of edge weights) and hop count,
* tracks the maximum header size in bits across the journey,
* enforces a hop budget, raising :class:`HopLimitExceeded` on loops,
* runs the full roundtrip protocol: outbound delivery at the
  destination host, acknowledgment emission, inbound delivery at the
  source host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import HopLimitExceeded, RoutingError
from repro.runtime.scheme import Deliver, Forward, Header, RoutingScheme
from repro.runtime.sizing import header_bits

#: engine names understood by the batched entry points (resolved by
#: :meth:`Simulator.resolve_engine`; also re-exported by
#: :mod:`repro.runtime.engine`)
EXECUTION_ENGINES = ("auto", "vectorized", "python")


@dataclass
class LegTrace:
    """One direction of a journey.

    Attributes:
        path: vertices visited, inclusive of both endpoints.
        cost: total edge weight traversed.
        max_header_bits: largest header observed on this leg.
    """

    path: List[int]
    cost: float
    max_header_bits: int

    @property
    def hops(self) -> int:
        """Edge count of the leg."""
        return len(self.path) - 1


@dataclass
class RoundtripTrace:
    """Result of a full roundtrip ``s -> t -> s``.

    Attributes:
        outbound: the forward leg trace.
        inbound: the acknowledgment leg trace.
    """

    outbound: LegTrace
    inbound: LegTrace

    @property
    def total_cost(self) -> float:
        """Roundtrip path cost."""
        return self.outbound.cost + self.inbound.cost

    @property
    def total_hops(self) -> int:
        """Roundtrip hop count."""
        return self.outbound.hops + self.inbound.hops

    @property
    def max_header_bits(self) -> int:
        """Largest header observed anywhere in the journey."""
        return max(self.outbound.max_header_bits, self.inbound.max_header_bits)


class Simulator:
    """Executes packets against a scheme.

    Args:
        scheme: the routing scheme under test.
        hop_limit: per-leg hop budget; defaults to ``8 * n + 64``, far
            above any correct scheme's needs but small enough to catch
            loops quickly.
        tables: compiled-table family for the vectorized engine —
            ``"dense"``, ``"blocked"``, or ``"auto"`` (default; picks
            by graph size).  All families route bit-identically.
    """

    def __init__(
        self,
        scheme: RoutingScheme,
        hop_limit: Optional[int] = None,
        tables: str = "auto",
    ):
        self._scheme = scheme
        self._g = scheme.graph
        self._hop_limit = hop_limit or (8 * self._g.n + 64)
        self._tables = tables

    def _run_leg(
        self, start: int, header: Header, expect_end: int
    ) -> Tuple[LegTrace, Header]:
        """Drive the packet until delivery; return the trace and the
        header as delivered (the host sees that header)."""
        at = start
        path = [at]
        cost = 0.0
        max_bits = header_bits(header, self._g.n)
        for _hop in range(self._hop_limit + 1):
            decision = self._scheme.forward(at, header)
            if isinstance(decision, Deliver):
                if at != expect_end:
                    raise RoutingError(
                        f"scheme {self._scheme.name} delivered at vertex "
                        f"{at}, expected {expect_end}"
                    )
                return LegTrace(path, cost, max_bits), decision.header
            if not isinstance(decision, Forward):
                raise RoutingError(
                    f"scheme returned {type(decision).__name__}, expected "
                    "Forward or Deliver"
                )
            nxt = self._g.head_of_port(at, decision.port)
            cost += self._g.weight(at, nxt)
            at = nxt
            path.append(at)
            header = decision.header
            max_bits = max(max_bits, header_bits(header, self._g.n))
        raise HopLimitExceeded(
            f"scheme {self._scheme.name} exceeded {self._hop_limit} hops "
            f"routing from {start} to {expect_end} (loop?)"
        )

    def one_way(self, source: int, dest_name: int) -> LegTrace:
        """Route a fresh packet ``source -> dest`` and stop at delivery
        (used for leg-level substrate experiments)."""
        dest_vertex = self._scheme.vertex_of(dest_name)
        header = self._scheme.new_packet_header(dest_name)
        trace, _final = self._run_leg(source, header, dest_vertex)
        return trace

    def roundtrip(self, source: int, dest_name: int) -> RoundtripTrace:
        """Run the full protocol: inject at ``source`` a packet for
        ``dest_name``; deliver; let the destination host emit the
        acknowledgment; deliver back at the source.

        Args:
            source: source *vertex* (where the packet enters the
                network).
            dest_name: destination *name* (all the packet knows).
        """
        dest_vertex = self._scheme.vertex_of(dest_name)
        header = self._scheme.new_packet_header(dest_name)
        outbound, delivered = self._run_leg(source, header, dest_vertex)
        # The destination host flips the packet around; learned routing
        # information stays in the header (Section 1.1.1).
        return_header = self._scheme.make_return_header(delivered)
        inbound, _final = self._run_leg(dest_vertex, return_header, source)
        return RoundtripTrace(outbound, inbound)

    def resolve_engine(self, engine: str = "auto") -> str:
        """The concrete engine a batched call would use.

        ``"auto"`` resolves to ``"vectorized"`` exactly when the scheme
        compiles (see
        :meth:`~repro.runtime.scheme.RoutingScheme.compile_tables`),
        ``"python"`` otherwise.

        Raises:
            RoutingError: for an unknown engine name, or for an
                explicit ``"vectorized"`` request on a scheme that does
                not compile.
        """
        if engine not in EXECUTION_ENGINES:
            raise RoutingError(
                f"unknown execution engine {engine!r}; choose from "
                f"{EXECUTION_ENGINES}"
            )
        if engine == "python":
            return "python"
        compiled = self._scheme.compiled_routes(self._tables)
        if compiled is not None:
            return "vectorized"
        if engine == "vectorized":
            raise RoutingError(
                f"scheme {self._scheme.name} does not support compiled "
                "vectorized execution (compile_tables() returned None); "
                "use engine='auto' or 'python'"
            )
        return "python"

    def resolve_tables(self) -> Optional[str]:
        """The concrete compiled-table family batched vectorized calls
        use (``"dense"`` or ``"blocked"``), or ``None`` when the scheme
        does not compile at all."""
        compiled = self._scheme.compiled_routes(self._tables)
        return None if compiled is None else compiled.family

    def roundtrip_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        by_name: bool = False,
        engine: str = "auto",
    ) -> List[RoundtripTrace]:
        """Run the full roundtrip protocol for a batch of pairs.

        This is the entry point for traffic workloads (see
        :mod:`repro.runtime.traffic`): one simulator instance amortizes
        scheme/graph lookups across the whole batch, and every journey
        is executed under the same hop budget.

        Args:
            pairs: ``(source, destination)`` pairs.  Sources are always
                vertex ids.  Destinations are vertex ids by default
                (translated through the scheme's naming, matching how
                workload generators produce pairs); pass
                ``by_name=True`` when destinations already are names.
            engine: ``"vectorized"`` executes the batch as frontier
                sweeps over the scheme's compiled decision tables
                (:mod:`repro.runtime.engine`); ``"python"`` runs the
                hop-by-hop reference loop; ``"auto"`` (default) uses
                the vectorized engine whenever the scheme compiles.
                All engines produce bit-identical traces.

        Returns:
            One :class:`RoundtripTrace` per pair, in input order.

        Raises:
            RoutingError: propagated from any journey — batch
                measurement never hides a delivery bug — and for
                unsupported engine requests (see :meth:`resolve_engine`).
            HopLimitExceeded: when any journey exceeds the hop budget.
        """
        if self.resolve_engine(engine) == "vectorized":
            from repro.runtime.engine import run_roundtrips

            vertex_of = self._scheme.vertex_of
            vertex_pairs = [
                (s, vertex_of(t) if by_name else t) for (s, t) in pairs
            ]
            return run_roundtrips(
                self._scheme.compiled_routes(self._tables),
                vertex_pairs,
                self._hop_limit,
                scheme_name=self._scheme.name,
            )
        name_of = self._scheme.name_of
        return [
            self.roundtrip(s, t if by_name else name_of(t))
            for (s, t) in pairs
        ]
