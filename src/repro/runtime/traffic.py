"""Batched traffic workloads: generators and the measurement harness.

The paper's motivation is routing under real traffic — millions of
(source, destination) journeys against fixed tables.  This module
makes heavy-traffic scenarios a first-class workload:

* pair generators for the three canonical traffic shapes —
  :func:`uniform_pairs` (background load), :func:`hotspot_pairs`
  (popular-destination skew, the DHT/content-server regime), and
  :func:`adversarial_pairs` (the largest-roundtrip pairs, where
  stretch bounds are under the most pressure) — plus
  :func:`mixed_pairs` blending all three;
* :func:`run_workload`, which drives a whole workload through
  :meth:`repro.runtime.simulator.Simulator.roundtrip_many` and
  aggregates cost, stretch, hop, and header statistics into one
  :class:`TrafficSummary`;
* sharded parallel execution: :func:`plan_shards` splits a workload
  into fixed-boundary chunks and :func:`run_workload` executes them
  concurrently (``jobs=``/``executor=``), combining the per-shard
  results through :meth:`TrafficSummary.merge`.  The shard partition
  depends only on the workload length and the shard parameters — never
  on ``jobs`` — so the merged summary is bit-identical across worker
  counts and executors (see :func:`run_workload`).

Exposed on the command line as ``python -m repro.cli traffic``
(``--jobs`` / ``--shard-size``).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.shortest_paths import DistanceOracle
from repro.runtime.scheme import RoutingScheme
from repro.runtime.simulator import Simulator

#: Workload kinds understood by :func:`generate_workload`.  The last
#: three — zipf-skewed hotspots, flash crowds, and diurnal ramps — are
#: the scenario-zoo shapes (:mod:`repro.scenarios`); they are plain
#: kinds here so every consumer (CLI ``--workload``, churn timelines,
#: the serve daemon) accepts them uniformly.
WORKLOAD_KINDS = (
    "uniform", "hotspot", "adversarial", "mixed",
    "zipf", "flash-crowd", "diurnal",
)

#: Shard executors understood by :func:`run_workload`.
EXECUTORS = ("serial", "threads", "processes")

#: Pairs per shard when parallelism is requested (``jobs=``) without an
#: explicit partition.  Fixed — independent of ``jobs`` — so any worker
#: count produces the same shard boundaries, hence the same summary.
DEFAULT_SHARD_SIZE = 512


@dataclass(frozen=True)
class Workload:
    """A named batch of ``(source_vertex, dest_vertex)`` pairs."""

    kind: str
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)


def _check_args(n: int, count: int) -> None:
    if count < 0:
        raise GraphError(f"workload size must be >= 0, got {count}")
    if count > 0 and n < 2:
        raise GraphError("traffic workloads need a graph with n >= 2")


def uniform_pairs(
    n: int, count: int, rng: Optional[random.Random] = None
) -> List[Tuple[int, int]]:
    """``count`` ordered pairs drawn uniformly (source != dest)."""
    _check_args(n, count)
    rng = rng or random.Random(0)
    pairs = []
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        pairs.append((s, t))
    return pairs


def hotspot_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    num_hotspots: Optional[int] = None,
    hotspot_bias: float = 0.8,
) -> List[Tuple[int, int]]:
    """Traffic concentrated on a few hot destinations.

    Args:
        n: vertex count.
        count: pairs to draw.
        rng: randomness source.
        num_hotspots: how many destinations are hot (default
            ``max(1, n // 16)``).
        hotspot_bias: probability that a pair targets a hotspot (the
            rest of the traffic stays uniform).
    """
    _check_args(n, count)
    if not 0.0 <= hotspot_bias <= 1.0:
        raise GraphError(f"hotspot_bias must be in [0, 1], got {hotspot_bias}")
    rng = rng or random.Random(0)
    k = num_hotspots if num_hotspots is not None else max(1, n // 16)
    if not 1 <= k <= n:
        raise GraphError(f"num_hotspots must be in [1, n], got {k}")
    hotspots = rng.sample(range(n), k)
    pairs = []
    for _ in range(count):
        if rng.random() < hotspot_bias:
            t = rng.choice(hotspots)
        else:
            t = rng.randrange(n)
        s = rng.randrange(n - 1)
        if s >= t:
            s += 1
        pairs.append((s, t))
    return pairs


def adversarial_pairs(
    oracle: DistanceOracle,
    count: int,
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, int]]:
    """The ``count`` pairs with the largest roundtrip distances.

    These are the journeys where a scheme's multiplicative stretch
    bound costs the most in absolute terms; the first pair realizes
    the roundtrip diameter.  When ``count`` exceeds the number of
    ordered pairs, the list cycles.  ``rng``, when given, shuffles the
    batch order (the multiset of pairs stays deterministic).
    """
    n = oracle.n
    _check_args(n, count)
    if count == 0:
        return []
    r = oracle.r_matrix.copy()
    np.fill_diagonal(r, -np.inf)
    flat = np.argsort(-r, axis=None, kind="stable")[: n * n - n]
    take = flat[np.arange(count) % flat.shape[0]]
    pairs = [(int(i) // n, int(i) % n) for i in take]
    if rng is not None:
        rng.shuffle(pairs)
    return pairs


def mixed_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    oracle: Optional[DistanceOracle] = None,
) -> List[Tuple[int, int]]:
    """A 40/40/20 uniform/hotspot/adversarial blend (the adversarial
    share falls back to uniform when no oracle is supplied).

    Each component draws from its own rng stream derived from ``rng``,
    so the blend is seed-stable: growing ``count`` extends every
    component's pair sequence instead of perturbing it (the pairs of a
    smaller draw are a sub-multiset of a larger draw from the same
    seed).
    """
    _check_args(n, count)
    rng = rng or random.Random(0)
    uni_rng, hot_rng, adv_rng, mix_rng = (
        random.Random(rng.getrandbits(64)) for _ in range(4)
    )
    n_uni = (2 * count) // 5
    n_hot = (2 * count) // 5
    n_adv = count - n_uni - n_hot
    pairs = uniform_pairs(n, n_uni, uni_rng) + hotspot_pairs(n, n_hot, hot_rng)
    if oracle is not None:
        pairs += adversarial_pairs(oracle, n_adv, adv_rng)
    else:
        pairs += uniform_pairs(n, n_adv, adv_rng)
    mix_rng.shuffle(pairs)
    return pairs


def zipf_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    alpha: float = 1.2,
) -> List[Tuple[int, int]]:
    """Traffic whose destination popularity follows a Zipf law.

    A random permutation of the vertices defines the popularity ranks;
    destination rank ``k`` is drawn with probability proportional to
    ``k^-alpha`` (inverse-CDF sampling), sources stay uniform.  The
    content-distribution regime between :func:`hotspot_pairs` (a flat
    hot set) and :func:`uniform_pairs` (no skew at all).

    Raises:
        GraphError: for ``alpha <= 0``.
    """
    _check_args(n, count)
    if alpha <= 0:
        raise GraphError(f"zipf alpha must be > 0, got {alpha}")
    if count == 0:
        return []
    rng = rng or random.Random(0)
    ranked = list(range(n))
    rng.shuffle(ranked)
    cdf = []
    acc = 0.0
    for k in range(1, n + 1):
        acc += k ** -alpha
        cdf.append(acc)
    total = cdf[-1]
    pairs = []
    for _ in range(count):
        u = rng.random() * total
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        t = ranked[lo]
        s = rng.randrange(n - 1)
        if s >= t:
            s += 1
        pairs.append((s, t))
    return pairs


def flash_crowd_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    targets: int = 1,
    bias: float = 0.95,
) -> List[Tuple[int, int]]:
    """A flash crowd: nearly all traffic slams a tiny target set.

    ``bias`` of the pairs go to one of ``targets`` crowd destinations
    (drawn per pair), the rest stay uniform background — the
    thundering-herd extreme of :func:`hotspot_pairs`.

    Raises:
        GraphError: for ``targets`` outside ``[1, n]`` or ``bias``
            outside ``[0, 1]``.
    """
    _check_args(n, count)
    if count == 0:
        return []
    if not 1 <= targets <= n:
        raise GraphError(f"flash-crowd targets must be in [1, n], got {targets}")
    if not 0.0 <= bias <= 1.0:
        raise GraphError(f"flash-crowd bias must be in [0, 1], got {bias}")
    rng = rng or random.Random(0)
    crowd = rng.sample(range(n), targets)
    pairs = []
    for _ in range(count):
        if rng.random() < bias:
            t = rng.choice(crowd)
        else:
            t = rng.randrange(n)
        s = rng.randrange(n - 1)
        if s >= t:
            s += 1
        pairs.append((s, t))
    return pairs


def diurnal_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    cycles: float = 1.0,
    low: float = 0.1,
    high: float = 0.9,
    num_hotspots: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """A diurnal ramp: hotspot intensity follows a day/night sinusoid.

    Pair ``i`` of ``count`` targets a hot destination with probability
    tracing ``cycles`` sinusoidal cycles between ``low`` (night) and
    ``high`` (peak) across the batch, so a sharded run executes the
    morning ramp, the peak, and the evening falloff in order.  The hot
    set has ``num_hotspots`` members (default ``max(1, n // 16)``).

    Raises:
        GraphError: for a non-positive ``cycles`` or ``low``/``high``
            outside ``[0, 1]`` or out of order.
    """
    import math

    _check_args(n, count)
    if count == 0:
        return []
    if cycles <= 0:
        raise GraphError(f"diurnal cycles must be > 0, got {cycles}")
    if not 0.0 <= low <= high <= 1.0:
        raise GraphError(
            f"diurnal low/high must satisfy 0 <= low <= high <= 1, "
            f"got low={low}, high={high}"
        )
    rng = rng or random.Random(0)
    k = num_hotspots if num_hotspots is not None else max(1, n // 16)
    if not 1 <= k <= n:
        raise GraphError(f"num_hotspots must be in [1, n], got {k}")
    hot = rng.sample(range(n), k)
    mid = (low + high) / 2.0
    amp = (high - low) / 2.0
    pairs = []
    for i in range(count):
        phase = 2.0 * math.pi * cycles * (i / count)
        p = mid - amp * math.cos(phase)  # i=0 is night, peaks mid-cycle
        if rng.random() < p:
            t = rng.choice(hot)
        else:
            t = rng.randrange(n)
        s = rng.randrange(n - 1)
        if s >= t:
            s += 1
        pairs.append((s, t))
    return pairs


def generate_workload(
    kind: str,
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    oracle: Optional[DistanceOracle] = None,
    **params,
) -> Workload:
    """Build a :class:`Workload` of one of the standard kinds.

    Args:
        kind: one of :data:`WORKLOAD_KINDS`.
        n: vertex count of the target graph.
        count: number of pairs.
        rng: randomness source.
        oracle: required for ``"adversarial"``; optional (but
            recommended) for ``"mixed"``.
        **params: kind-specific shape knobs, forwarded to the pair
            generator (e.g. ``alpha=`` for ``zipf``, ``targets=`` /
            ``bias=`` for ``flash-crowd``, ``cycles=`` / ``low=`` /
            ``high=`` for ``diurnal``, ``num_hotspots=`` /
            ``hotspot_bias=`` for ``hotspot``).

    Raises:
        GraphError: for unknown kinds, parameters the kind does not
            accept, or invalid parameter values.
    """
    generators = {
        "uniform": lambda: uniform_pairs(n, count, rng, **params),
        "hotspot": lambda: hotspot_pairs(n, count, rng, **params),
        "mixed": lambda: mixed_pairs(n, count, rng, oracle, **params),
        "zipf": lambda: zipf_pairs(n, count, rng, **params),
        "flash-crowd": lambda: flash_crowd_pairs(n, count, rng, **params),
        "diurnal": lambda: diurnal_pairs(n, count, rng, **params),
    }
    if kind == "adversarial":
        if oracle is None:
            raise GraphError("adversarial workloads need a DistanceOracle")
        generators["adversarial"] = lambda: adversarial_pairs(
            oracle, count, rng, **params
        )
    elif kind not in generators:
        raise GraphError(
            f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
        )
    try:
        return Workload(kind, generators[kind]())
    except TypeError as exc:
        raise GraphError(f"invalid {kind!r} workload parameters: {exc}")


@dataclass(frozen=True)
class EpochStretch:
    """Per-epoch stretch row of a churn-timeline run.

    A timeline run (:func:`repro.runtime.churn.run_timeline`, or
    ``run_workload(events=...)``) routes one workload batch per epoch,
    mutating the topology between batches.  Each epoch contributes one
    of these rows to :attr:`TrafficSummary.epochs`, so the aggregate
    summary keeps the stretch trajectory across generations instead of
    flattening it.

    Attributes:
        index: epoch position in the timeline (0-based).
        generation: the :class:`~repro.api.network.Network` generation
            that served this epoch's traffic.
        pairs: journeys routed in this epoch.
        events: op names of the delta applied *before* this epoch's
            traffic (empty for a quiet epoch).
        repair: how the oracle crossed into this generation —
            ``"none"`` (no mutation), ``"incremental"`` (row-wise
            repair), or ``"rebuild"`` (keyed full rebuild).
        mean_stretch: average roundtrip stretch within the epoch.
        max_stretch: worst roundtrip stretch within the epoch.
        worst_pair: the pair achieving ``max_stretch``.
    """

    index: int
    generation: int
    pairs: int
    events: Tuple[str, ...] = ()
    repair: str = "none"
    mean_stretch: float = float("nan")
    max_stretch: float = float("nan")
    worst_pair: Tuple[int, int] = (-1, -1)

    def as_dict(self) -> dict:
        """A JSON-able dict (the serve protocol's wire form)."""
        return {
            "index": self.index,
            "generation": self.generation,
            "pairs": self.pairs,
            "events": list(self.events),
            "repair": self.repair,
            "mean_stretch": self.mean_stretch,
            "max_stretch": self.max_stretch,
            "worst_pair": list(self.worst_pair),
        }

    @classmethod
    def from_dict(cls, doc) -> "EpochStretch":
        """Rebuild from :meth:`as_dict` output (raises ``KeyError`` /
        ``TypeError`` / ``ValueError`` on malformed docs; the serve
        codec wraps those)."""
        worst = doc["worst_pair"]
        return cls(
            index=int(doc["index"]),
            generation=int(doc["generation"]),
            pairs=int(doc["pairs"]),
            events=tuple(str(e) for e in doc["events"]),
            repair=str(doc["repair"]),
            mean_stretch=float(doc["mean_stretch"]),
            max_stretch=float(doc["max_stretch"]),
            worst_pair=(int(worst[0]), int(worst[1])),
        )

    def format(self) -> str:
        """One human-readable line (a row under the summary block)."""
        label = f"epoch {self.index}"
        parts = [f"gen {self.generation} pairs={self.pairs}"]
        if self.events:
            parts.append(f"events=[{','.join(self.events)}]")
            parts.append(f"repair={self.repair}")
        if self.pairs and not np.isnan(self.max_stretch):
            parts.append(
                f"stretch mean {self.mean_stretch:.3f}, "
                f"max {self.max_stretch:.3f} at {self.worst_pair}"
            )
        return f"{label:<11}: " + " ".join(parts)


@dataclass
class TrafficSummary:
    """Aggregate statistics of one workload run.

    Attributes:
        kind: workload kind label.
        pairs: journeys executed.
        total_cost: summed roundtrip path cost.
        total_hops: summed roundtrip hop count.
        mean_cost: average roundtrip path cost.
        mean_hops: average roundtrip hop count.
        max_hops: worst roundtrip hop count.
        max_header_bits: largest header seen in any journey.
        mean_stretch: average roundtrip stretch (``nan`` without an
            oracle).
        max_stretch: worst roundtrip stretch (``nan`` without an
            oracle).
        worst_pair: the pair achieving ``max_stretch`` (``(-1, -1)``
            without an oracle or an empty workload).
        elapsed_s: wall-clock seconds spent routing the batch.
        epochs: per-epoch stretch rows for churn-timeline runs (empty
            for a plain static-topology workload).
    """

    kind: str
    pairs: int
    total_cost: float
    total_hops: int
    mean_cost: float
    mean_hops: float
    max_hops: int
    max_header_bits: int
    mean_stretch: float
    max_stretch: float
    worst_pair: Tuple[int, int]
    elapsed_s: float
    epochs: Tuple[EpochStretch, ...] = ()

    @property
    def pairs_per_s(self) -> float:
        """Routing throughput of the batch (``nan`` when ``elapsed_s``
        is zero: a shard too small for ``perf_counter`` resolution is
        unmeasurable, not zero-throughput)."""
        return self.pairs / self.elapsed_s if self.elapsed_s > 0 else float("nan")

    @classmethod
    def merge(cls, summaries: Sequence["TrafficSummary"]) -> "TrafficSummary":
        """Aggregate several partial summaries into one.

        The merged summary equals (up to float summation order) the
        summary of the concatenated workload: totals add, means are
        recomputed pair-weighted, maxima take the first strictly
        larger part (so ``worst_pair`` matches the concatenated run's
        first-wins argmax), and ``elapsed_s`` adds.  This is the
        aggregation path sharded execution uses to combine per-shard
        results (:func:`run_workload` with ``shards=``/``jobs=``).

        Stretch columns have *partial-coverage* semantics: parts
        measured without an oracle carry ``nan`` stretch, and the merge
        aggregates over the parts that do carry it — ``mean_stretch``
        is pair-weighted over the covered pairs only, and
        ``max_stretch``/``worst_pair`` take the first-wins maximum over
        the covered parts.  Only when *no* part has stretch does the
        merged summary report ``nan``/``(-1, -1)``, so mixing oracle
        and oracle-less shards never silently drops measured data.

        Raises:
            GraphError: for an empty summary list (there is no neutral
                ``kind``).
        """
        if not summaries:
            raise GraphError("TrafficSummary.merge needs at least one part")
        kinds = list(dict.fromkeys(s.kind for s in summaries))
        kind = kinds[0] if len(kinds) == 1 else "+".join(kinds)
        pairs = sum(s.pairs for s in summaries)
        total_cost = sum(s.total_cost for s in summaries)
        total_hops = sum(s.total_hops for s in summaries)
        elapsed = sum(s.elapsed_s for s in summaries)
        epochs = tuple(e for s in summaries for e in s.epochs)
        if pairs == 0:
            return cls(
                kind, 0, 0.0, 0, 0.0, 0.0, 0, 0, float("nan"),
                float("nan"), (-1, -1), elapsed, epochs,
            )
        max_hops = max(s.max_hops for s in summaries)
        max_bits = max(s.max_header_bits for s in summaries)
        with_stretch = [
            s for s in summaries if s.pairs and not np.isnan(s.max_stretch)
        ]
        mean_stretch = max_stretch = float("nan")
        worst_pair = (-1, -1)
        if with_stretch:
            covered = sum(s.pairs for s in with_stretch)
            mean_stretch = (
                sum(s.mean_stretch * s.pairs for s in with_stretch) / covered
            )
            max_stretch = with_stretch[0].max_stretch
            worst_pair = with_stretch[0].worst_pair
            for s in with_stretch[1:]:
                if s.max_stretch > max_stretch:
                    max_stretch = s.max_stretch
                    worst_pair = s.worst_pair
        return cls(
            kind=kind,
            pairs=pairs,
            total_cost=total_cost,
            total_hops=total_hops,
            mean_cost=total_cost / pairs,
            mean_hops=total_hops / pairs,
            max_hops=max_hops,
            max_header_bits=max_bits,
            mean_stretch=mean_stretch,
            max_stretch=max_stretch,
            worst_pair=worst_pair,
            elapsed_s=elapsed,
            epochs=epochs,
        )

    def format(self) -> str:
        """Human-readable block, as printed by the CLI."""
        lines = [
            f"workload   : {self.kind}",
            f"pairs      : {self.pairs}",
            f"total cost : {self.total_cost:.1f}",
            f"mean cost  : {self.mean_cost:.2f}",
            f"mean hops  : {self.mean_hops:.2f}   (max {self.max_hops})",
            f"hdr bits   : {self.max_header_bits}",
        ]
        if self.pairs and not np.isnan(self.max_stretch):
            lines.append(
                f"stretch    : mean {self.mean_stretch:.3f}, "
                f"max {self.max_stretch:.3f} at {self.worst_pair}"
            )
        if np.isnan(self.pairs_per_s):
            lines.append(
                f"throughput : unmeasurable "
                f"({self.elapsed_s * 1000:.1f} ms)"
            )
        else:
            lines.append(
                f"throughput : {self.pairs_per_s:,.0f} pairs/s "
                f"({self.elapsed_s * 1000:.1f} ms)"
            )
        for epoch in self.epochs:
            lines.append(epoch.format())
        return "\n".join(lines)


def plan_shards(
    total: int,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    parallel: bool = False,
) -> List[Tuple[int, int]]:
    """Fixed shard boundaries ``[(lo, hi), ...]`` covering ``range(total)``.

    The partition is a pure function of ``(total, shards, shard_size)``
    — deliberately independent of the worker count — so a workload
    executed with any ``jobs`` value aggregates the *same* per-shard
    summaries in the same order:

    * ``shards=k`` — ``min(k, total)`` contiguous chunks of balanced
      size (the first ``total % k`` chunks hold one extra pair);
    * ``shard_size=m`` — contiguous chunks of ``m`` pairs (last one
      short);
    * neither, with ``parallel=True`` — chunks of
      :data:`DEFAULT_SHARD_SIZE`;
    * neither, serial — one chunk (the monolithic legacy path).

    Raises:
        GraphError: for ``shards``/``shard_size`` below 1, or both
            given at once.
    """
    if shards is not None and shard_size is not None:
        raise GraphError("pass shards or shard_size, not both")
    if shards is not None and shards < 1:
        raise GraphError(f"shards must be >= 1, got {shards}")
    if shard_size is not None and shard_size < 1:
        raise GraphError(f"shard_size must be >= 1, got {shard_size}")
    if total <= 0:
        return [(0, 0)]
    if shards is not None:
        k = min(shards, total)
        base, rem = divmod(total, k)
        bounds = []
        lo = 0
        for i in range(k):
            hi = lo + base + (1 if i < rem else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds
    size = shard_size if shard_size is not None else (
        DEFAULT_SHARD_SIZE if parallel else total
    )
    return [(lo, min(lo + size, total)) for lo in range(0, total, size)]


def num_shards(
    total: int,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    jobs: Optional[int] = None,
) -> int:
    """How many shards :func:`run_workload` executes for these
    parameters (the accounting-side view of :func:`plan_shards`,
    keeping the ``jobs``-requests-a-partition rule in one place)."""
    return len(plan_shards(
        total, shards=shards, shard_size=shard_size,
        parallel=jobs is not None,
    ))


def resolve_executor(
    engine: str, jobs: Optional[int], executor: Optional[str] = None
) -> str:
    """The concrete shard executor :func:`run_workload` would use.

    ``None`` auto-selects: ``"serial"`` for ``jobs`` of ``None``/``1``;
    otherwise ``"processes"`` for the python engine (pure-Python
    forwarding is GIL-bound, so real parallelism needs a process pool)
    and ``"threads"`` for the vectorized engine (its numpy sweeps
    release the GIL, and threads skip pickling entirely).

    Raises:
        GraphError: for an unknown executor name.
    """
    if executor is not None:
        if executor not in EXECUTORS:
            raise GraphError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        return executor
    if jobs is None or jobs <= 1:
        return "serial"
    return "processes" if engine == "python" else "threads"


def _summarize(
    kind: str,
    pairs: Sequence[Tuple[int, int]],
    traces,
    r_matrix,
    elapsed: float,
) -> TrafficSummary:
    """Aggregate one (shard's) trace batch into a :class:`TrafficSummary`.

    ``r_matrix`` is the oracle's roundtrip-distance matrix (or ``None``
    for no stretch columns); workers receive the bare matrix so the
    process executor never ships a whole :class:`DistanceOracle`.
    """
    if not traces:
        return TrafficSummary(
            kind, 0, 0.0, 0, 0.0, 0.0, 0, 0, float("nan"), float("nan"),
            (-1, -1), elapsed,
        )
    total_cost = sum(t.total_cost for t in traces)
    total_hops = sum(t.total_hops for t in traces)
    max_bits = max(t.max_header_bits for t in traces)
    mean_stretch = max_stretch = float("nan")
    worst_pair = (-1, -1)
    if r_matrix is not None:
        stretches = [
            t.total_cost / float(r_matrix[s, v])
            for t, (s, v) in zip(traces, pairs)
        ]
        mean_stretch = sum(stretches) / len(stretches)
        worst = max(range(len(stretches)), key=stretches.__getitem__)
        max_stretch = stretches[worst]
        worst_pair = pairs[worst]
    return TrafficSummary(
        kind=kind,
        pairs=len(traces),
        total_cost=total_cost,
        total_hops=total_hops,
        mean_cost=total_cost / len(traces),
        mean_hops=total_hops / len(traces),
        max_hops=max(t.total_hops for t in traces),
        max_header_bits=max_bits,
        mean_stretch=mean_stretch,
        max_stretch=max_stretch,
        worst_pair=worst_pair,
        elapsed_s=elapsed,
    )


def _execute_shard(
    sim: Simulator,
    engine: str,
    kind: str,
    pairs: Sequence[Tuple[int, int]],
    r_matrix,
) -> TrafficSummary:
    """Route one shard and summarize it.  Only the routing itself is
    timed; engine resolution/compilation happened before."""
    t0 = time.perf_counter()
    traces = sim.roundtrip_many(pairs, engine=engine)
    elapsed = time.perf_counter() - t0
    return _summarize(kind, pairs, traces, r_matrix, elapsed)


# Process-executor worker state, installed once per worker by
# :func:`_shard_worker_init` (via the pool initializer) so each
# submitted shard ships only its pair chunk.
_WORKER_CTX = None


def _shard_worker_init(
    scheme, hop_limit, engine, kind, r_matrix, store_root=None,
    tables="auto",
) -> None:
    """Per-worker setup: build the simulator and rehydrate the compiled
    decision tables (the pickled scheme arrives without them — see
    :meth:`repro.runtime.scheme.RoutingScheme.__getstate__`).  Compile
    time is billed to worker startup, never to a shard's ``elapsed_s``.

    ``store_root`` pins the worker to the parent's artifact-store
    configuration: when set, the compile path memory-maps persisted
    :class:`~repro.runtime.engine.SubstrateStepTables` / first-hop
    matrices from that store — sharing pages with the parent and every
    sibling worker — instead of re-deriving them from the shipped
    scheme; when ``None`` (the parent ran store-less) workers disable
    theirs too, so a run's store traffic is decided in exactly one
    place.
    """
    global _WORKER_CTX
    from repro.store import ArtifactStore, set_default_store

    set_default_store(
        ArtifactStore(store_root) if store_root is not None else None
    )
    sim = Simulator(scheme, hop_limit=hop_limit, tables=tables)
    sim.resolve_engine(engine)  # warms the compiled-routes cache
    _WORKER_CTX = (sim, engine, kind, r_matrix)


def _shard_worker_run(pairs: Sequence[Tuple[int, int]]) -> TrafficSummary:
    """Execute one shard inside a pool worker."""
    sim, engine, kind, r_matrix = _WORKER_CTX
    return _execute_shard(sim, engine, kind, pairs, r_matrix)


def run_workload(
    scheme,
    workload: Optional[Workload | Sequence[Tuple[int, int]]] = None,
    oracle: Optional[DistanceOracle] = None,
    hop_limit: Optional[int] = None,
    engine: str = "auto",
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    tables: str = "auto",
    events=None,
    network=None,
) -> TrafficSummary:
    """Route a whole workload — optionally sharded and in parallel —
    and aggregate the statistics.

    The workload is split into fixed-boundary chunks by
    :func:`plan_shards`, each shard is routed as one batch, and the
    per-shard summaries are combined with :meth:`TrafficSummary.merge`
    in shard order.  Because the partition never depends on ``jobs``
    and each shard's float summation order is fixed, the result is
    **bit-identical across worker counts and executors** (only
    ``elapsed_s`` — physical time — varies; it sums the per-shard
    routing times).  One-time :meth:`RoutingScheme.compile_tables` work
    is excluded from ``elapsed_s`` on every path, so per-shard
    throughput is comparable across engines.

    Args:
        scheme: the scheme under load (already constructed).
        workload: a :class:`Workload` or a raw pair list.
        oracle: ground-truth distances; enables stretch columns.
        hop_limit: forwarded to the :class:`Simulator`.
        engine: execution engine for the batches (``"auto"`` /
            ``"vectorized"`` / ``"python"``, see
            :meth:`Simulator.roundtrip_many`); summaries are identical
            across engines.
        shards: split into this many balanced contiguous chunks.
        shard_size: split into chunks of this many pairs (mutually
            exclusive with ``shards``).  When neither is given, a
            parallel run (``jobs=``) uses :data:`DEFAULT_SHARD_SIZE`
            and a serial run stays monolithic.
        jobs: worker count for parallel shard execution (``None``/``1``
            = serial).
        executor: ``"serial"`` / ``"threads"`` / ``"processes"``;
            ``None`` auto-selects per :func:`resolve_executor`.  The
            process pool ships the scheme to each worker once (pickle
            excludes compiled tables; workers rehydrate them from their
            own CSR snapshot) and each shard ships only its pairs.
            Each call spins up (and tears down) its own pool, so
            worker startup — like table compilation — is never billed
            to ``elapsed_s``; amortize it by serving large workloads
            per call rather than many tiny ones.
        tables: compiled-table family for the vectorized engine
            (``"dense"`` / ``"blocked"`` / ``"auto"``); summaries are
            identical across families.
        events: a churn :class:`~repro.runtime.churn.Timeline` (or its
            JSON doc / file path).  Switches to timeline mode: the run
            interleaves routing batches with deterministic seeded
            topology mutations through ``network.evolve``, and the
            summary carries per-epoch stretch rows
            (:attr:`TrafficSummary.epochs`).  In this mode ``scheme``
            is a registered scheme *label*, ``network`` is required,
            ``workload``/``oracle`` must be omitted (the timeline
            defines the traffic), and the run delegates to
            :func:`repro.runtime.churn.run_timeline`.
        network: the generation-1 :class:`~repro.api.network.Network`
            the timeline starts from (timeline mode only).

    Raises:
        GraphError: if any pair has ``source == destination``
            (roundtrip stretch is undefined there), or for invalid
            shard/executor parameters.
        RoutingError: propagated from the simulator on any failure; a
            failing journey raises the same error the serial run's
            first (input-order) failure would, even when a later shard
            fails faster.
    """
    if events is not None:
        from repro.runtime.churn import run_timeline

        if network is None:
            raise GraphError("run_workload(events=...) needs network=")
        if workload is not None or oracle is not None:
            raise GraphError(
                "run_workload(events=...) defines its traffic from the "
                "timeline; do not pass workload= or oracle="
            )
        summary, _net = run_timeline(
            network, scheme, events,
            hop_limit=hop_limit, engine=engine, shards=shards,
            shard_size=shard_size, jobs=jobs, executor=executor,
            tables=tables,
        )
        return summary
    if workload is None:
        raise GraphError("run_workload needs a workload (or events=)")
    if isinstance(workload, Workload):
        kind, pairs = workload.kind, workload.pairs
    else:
        kind, pairs = "custom", list(workload)
    for (s, t) in pairs:
        if s == t:
            raise GraphError(
                f"traffic pairs need source != destination, got ({s}, {t})"
            )
    if jobs is not None and jobs < 1:
        raise GraphError(f"jobs must be >= 1, got {jobs}")
    bounds = plan_shards(
        len(pairs), shards=shards, shard_size=shard_size,
        parallel=jobs is not None,
    )
    sim = Simulator(scheme, hop_limit=hop_limit, tables=tables)
    resolved = sim.resolve_engine(engine)  # compiles outside the timed region
    # Auto-select the executor from the *resolved* engine: "auto" on a
    # non-compilable scheme must get the process pool, not GIL-bound
    # threads.
    executor = resolve_executor(resolved, jobs, executor)
    r_matrix = oracle.r_matrix if oracle is not None else None
    if len(bounds) == 1:
        return _execute_shard(sim, resolved, kind, pairs, r_matrix)
    chunks = [pairs[lo:hi] for lo, hi in bounds]
    workers = min(jobs or 1, len(chunks))
    if executor == "serial" or workers == 1:
        parts = [
            _execute_shard(sim, resolved, kind, c, r_matrix) for c in chunks
        ]
    elif executor == "threads":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_shard, sim, resolved, kind, c, r_matrix)
                for c in chunks
            ]
            # Collecting in shard order reproduces the serial run's
            # first-failure semantics: the earliest failing shard's
            # error surfaces, regardless of which worker failed first.
            parts = [f.result() for f in futures]
    else:
        from repro.store import default_store

        parent_store = default_store()
        store_root = None if parent_store is None else str(parent_store.root)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_shard_worker_init,
            initargs=(
                scheme, hop_limit, resolved, kind, r_matrix, store_root,
                tables,
            ),
        ) as pool:
            futures = [pool.submit(_shard_worker_run, c) for c in chunks]
            parts = [f.result() for f in futures]
    return TrafficSummary.merge(parts)
