"""Batched traffic workloads: generators and the measurement harness.

The paper's motivation is routing under real traffic — millions of
(source, destination) journeys against fixed tables.  This module
makes heavy-traffic scenarios a first-class workload:

* pair generators for the three canonical traffic shapes —
  :func:`uniform_pairs` (background load), :func:`hotspot_pairs`
  (popular-destination skew, the DHT/content-server regime), and
  :func:`adversarial_pairs` (the largest-roundtrip pairs, where
  stretch bounds are under the most pressure) — plus
  :func:`mixed_pairs` blending all three;
* :func:`run_workload`, which drives a whole workload through
  :meth:`repro.runtime.simulator.Simulator.roundtrip_many` and
  aggregates cost, stretch, hop, and header statistics into one
  :class:`TrafficSummary`.

Exposed on the command line as ``python -m repro.cli traffic``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.shortest_paths import DistanceOracle
from repro.runtime.scheme import RoutingScheme
from repro.runtime.simulator import Simulator

#: Workload kinds understood by :func:`generate_workload`.
WORKLOAD_KINDS = ("uniform", "hotspot", "adversarial", "mixed")


@dataclass(frozen=True)
class Workload:
    """A named batch of ``(source_vertex, dest_vertex)`` pairs."""

    kind: str
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)


def _check_args(n: int, count: int) -> None:
    if count < 0:
        raise GraphError(f"workload size must be >= 0, got {count}")
    if count > 0 and n < 2:
        raise GraphError("traffic workloads need a graph with n >= 2")


def uniform_pairs(
    n: int, count: int, rng: Optional[random.Random] = None
) -> List[Tuple[int, int]]:
    """``count`` ordered pairs drawn uniformly (source != dest)."""
    _check_args(n, count)
    rng = rng or random.Random(0)
    pairs = []
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        pairs.append((s, t))
    return pairs


def hotspot_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    num_hotspots: Optional[int] = None,
    hotspot_bias: float = 0.8,
) -> List[Tuple[int, int]]:
    """Traffic concentrated on a few hot destinations.

    Args:
        n: vertex count.
        count: pairs to draw.
        rng: randomness source.
        num_hotspots: how many destinations are hot (default
            ``max(1, n // 16)``).
        hotspot_bias: probability that a pair targets a hotspot (the
            rest of the traffic stays uniform).
    """
    _check_args(n, count)
    if not 0.0 <= hotspot_bias <= 1.0:
        raise GraphError(f"hotspot_bias must be in [0, 1], got {hotspot_bias}")
    rng = rng or random.Random(0)
    k = num_hotspots if num_hotspots is not None else max(1, n // 16)
    if not 1 <= k <= n:
        raise GraphError(f"num_hotspots must be in [1, n], got {k}")
    hotspots = rng.sample(range(n), k)
    pairs = []
    for _ in range(count):
        if rng.random() < hotspot_bias:
            t = rng.choice(hotspots)
        else:
            t = rng.randrange(n)
        s = rng.randrange(n - 1)
        if s >= t:
            s += 1
        pairs.append((s, t))
    return pairs


def adversarial_pairs(
    oracle: DistanceOracle,
    count: int,
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, int]]:
    """The ``count`` pairs with the largest roundtrip distances.

    These are the journeys where a scheme's multiplicative stretch
    bound costs the most in absolute terms; the first pair realizes
    the roundtrip diameter.  When ``count`` exceeds the number of
    ordered pairs, the list cycles.  ``rng``, when given, shuffles the
    batch order (the multiset of pairs stays deterministic).
    """
    n = oracle.n
    _check_args(n, count)
    if count == 0:
        return []
    r = oracle.r_matrix.copy()
    np.fill_diagonal(r, -np.inf)
    flat = np.argsort(-r, axis=None, kind="stable")[: n * n - n]
    take = flat[np.arange(count) % flat.shape[0]]
    pairs = [(int(i) // n, int(i) % n) for i in take]
    if rng is not None:
        rng.shuffle(pairs)
    return pairs


def mixed_pairs(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    oracle: Optional[DistanceOracle] = None,
) -> List[Tuple[int, int]]:
    """A 40/40/20 uniform/hotspot/adversarial blend (the adversarial
    share falls back to uniform when no oracle is supplied)."""
    _check_args(n, count)
    rng = rng or random.Random(0)
    n_uni = (2 * count) // 5
    n_hot = (2 * count) // 5
    n_adv = count - n_uni - n_hot
    pairs = uniform_pairs(n, n_uni, rng) + hotspot_pairs(n, n_hot, rng)
    if oracle is not None:
        pairs += adversarial_pairs(oracle, n_adv, rng)
    else:
        pairs += uniform_pairs(n, n_adv, rng)
    rng.shuffle(pairs)
    return pairs


def generate_workload(
    kind: str,
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    oracle: Optional[DistanceOracle] = None,
) -> Workload:
    """Build a :class:`Workload` of one of the standard kinds.

    Args:
        kind: one of :data:`WORKLOAD_KINDS`.
        n: vertex count of the target graph.
        count: number of pairs.
        rng: randomness source.
        oracle: required for ``"adversarial"``; optional (but
            recommended) for ``"mixed"``.
    """
    if kind == "uniform":
        return Workload(kind, uniform_pairs(n, count, rng))
    if kind == "hotspot":
        return Workload(kind, hotspot_pairs(n, count, rng))
    if kind == "adversarial":
        if oracle is None:
            raise GraphError("adversarial workloads need a DistanceOracle")
        return Workload(kind, adversarial_pairs(oracle, count, rng))
    if kind == "mixed":
        return Workload(kind, mixed_pairs(n, count, rng, oracle))
    raise GraphError(
        f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
    )


@dataclass
class TrafficSummary:
    """Aggregate statistics of one workload run.

    Attributes:
        kind: workload kind label.
        pairs: journeys executed.
        total_cost: summed roundtrip path cost.
        total_hops: summed roundtrip hop count.
        mean_cost: average roundtrip path cost.
        mean_hops: average roundtrip hop count.
        max_hops: worst roundtrip hop count.
        max_header_bits: largest header seen in any journey.
        mean_stretch: average roundtrip stretch (``nan`` without an
            oracle).
        max_stretch: worst roundtrip stretch (``nan`` without an
            oracle).
        worst_pair: the pair achieving ``max_stretch`` (``(-1, -1)``
            without an oracle or an empty workload).
        elapsed_s: wall-clock seconds spent routing the batch.
    """

    kind: str
    pairs: int
    total_cost: float
    total_hops: int
    mean_cost: float
    mean_hops: float
    max_hops: int
    max_header_bits: int
    mean_stretch: float
    max_stretch: float
    worst_pair: Tuple[int, int]
    elapsed_s: float

    @property
    def pairs_per_s(self) -> float:
        """Routing throughput of the batch."""
        return self.pairs / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @classmethod
    def merge(cls, summaries: Sequence["TrafficSummary"]) -> "TrafficSummary":
        """Aggregate several partial summaries into one.

        The merged summary equals (up to float summation order) the
        summary of the concatenated workload: totals add, means are
        recomputed pair-weighted, maxima take the first strictly
        larger part (so ``worst_pair`` matches the concatenated run's
        first-wins argmax), and ``elapsed_s`` adds.  This is the
        aggregation path sharded/vectorized serving uses to combine
        per-shard results.

        Raises:
            GraphError: for an empty summary list (there is no neutral
                ``kind``).
        """
        if not summaries:
            raise GraphError("TrafficSummary.merge needs at least one part")
        kinds = list(dict.fromkeys(s.kind for s in summaries))
        kind = kinds[0] if len(kinds) == 1 else "+".join(kinds)
        pairs = sum(s.pairs for s in summaries)
        total_cost = sum(s.total_cost for s in summaries)
        total_hops = sum(s.total_hops for s in summaries)
        elapsed = sum(s.elapsed_s for s in summaries)
        if pairs == 0:
            return cls(
                kind, 0, 0.0, 0, 0.0, 0.0, 0, 0, float("nan"),
                float("nan"), (-1, -1), elapsed,
            )
        max_hops = max(s.max_hops for s in summaries)
        max_bits = max(s.max_header_bits for s in summaries)
        with_stretch = [
            s for s in summaries if s.pairs and not np.isnan(s.max_stretch)
        ]
        mean_stretch = max_stretch = float("nan")
        worst_pair = (-1, -1)
        if with_stretch and len(with_stretch) == sum(
            1 for s in summaries if s.pairs
        ):
            mean_stretch = (
                sum(s.mean_stretch * s.pairs for s in with_stretch) / pairs
            )
            max_stretch = with_stretch[0].max_stretch
            worst_pair = with_stretch[0].worst_pair
            for s in with_stretch[1:]:
                if s.max_stretch > max_stretch:
                    max_stretch = s.max_stretch
                    worst_pair = s.worst_pair
        return cls(
            kind=kind,
            pairs=pairs,
            total_cost=total_cost,
            total_hops=total_hops,
            mean_cost=total_cost / pairs,
            mean_hops=total_hops / pairs,
            max_hops=max_hops,
            max_header_bits=max_bits,
            mean_stretch=mean_stretch,
            max_stretch=max_stretch,
            worst_pair=worst_pair,
            elapsed_s=elapsed,
        )

    def format(self) -> str:
        """Human-readable block, as printed by the CLI."""
        lines = [
            f"workload   : {self.kind}",
            f"pairs      : {self.pairs}",
            f"total cost : {self.total_cost:.1f}",
            f"mean cost  : {self.mean_cost:.2f}",
            f"mean hops  : {self.mean_hops:.2f}   (max {self.max_hops})",
            f"hdr bits   : {self.max_header_bits}",
        ]
        if self.pairs and not np.isnan(self.max_stretch):
            lines.append(
                f"stretch    : mean {self.mean_stretch:.3f}, "
                f"max {self.max_stretch:.3f} at {self.worst_pair}"
            )
        lines.append(
            f"throughput : {self.pairs_per_s:,.0f} pairs/s "
            f"({self.elapsed_s * 1000:.1f} ms)"
        )
        return "\n".join(lines)


def run_workload(
    scheme: RoutingScheme,
    workload: Workload | Sequence[Tuple[int, int]],
    oracle: Optional[DistanceOracle] = None,
    hop_limit: Optional[int] = None,
    engine: str = "auto",
) -> TrafficSummary:
    """Route a whole workload and aggregate the statistics.

    Args:
        scheme: the scheme under load (already constructed).
        workload: a :class:`Workload` or a raw pair list.
        oracle: ground-truth distances; enables stretch columns.
        hop_limit: forwarded to the :class:`Simulator`.
        engine: execution engine for the batch (``"auto"`` /
            ``"vectorized"`` / ``"python"``, see
            :meth:`Simulator.roundtrip_many`); summaries are identical
            across engines.

    Raises:
        GraphError: if any pair has ``source == destination``
            (roundtrip stretch is undefined there).
        RoutingError: propagated from the simulator on any failure.
    """
    if isinstance(workload, Workload):
        kind, pairs = workload.kind, workload.pairs
    else:
        kind, pairs = "custom", list(workload)
    for (s, t) in pairs:
        if s == t:
            raise GraphError(
                f"traffic pairs need source != destination, got ({s}, {t})"
            )
    sim = Simulator(scheme, hop_limit=hop_limit)
    t0 = time.perf_counter()
    traces = sim.roundtrip_many(pairs, engine=engine)
    elapsed = time.perf_counter() - t0
    if not traces:
        return TrafficSummary(
            kind, 0, 0.0, 0, 0.0, 0.0, 0, 0, float("nan"), float("nan"),
            (-1, -1), elapsed,
        )
    total_cost = sum(t.total_cost for t in traces)
    total_hops = sum(t.total_hops for t in traces)
    max_bits = max(t.max_header_bits for t in traces)
    mean_stretch = max_stretch = float("nan")
    worst_pair = (-1, -1)
    if oracle is not None:
        stretches = [
            t.total_cost / oracle.r(s, v)
            for t, (s, v) in zip(traces, pairs)
        ]
        mean_stretch = sum(stretches) / len(stretches)
        worst = max(range(len(stretches)), key=stretches.__getitem__)
        max_stretch = stretches[worst]
        worst_pair = pairs[worst]
    return TrafficSummary(
        kind=kind,
        pairs=len(traces),
        total_cost=total_cost,
        total_hops=total_hops,
        mean_cost=total_cost / len(traces),
        mean_hops=total_hops / len(traces),
        max_hops=max(t.total_hops for t in traces),
        max_header_bits=max_bits,
        mean_stretch=mean_stretch,
        max_stretch=max_stretch,
        worst_pair=worst_pair,
        elapsed_s=elapsed,
    )
