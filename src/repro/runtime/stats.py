"""Measurement helpers: stretch distributions and table summaries.

These are the primitives the analysis harness and benchmarks use to
turn a scheme into the numbers reported in the paper's claims table
(Fig. 1): worst/mean roundtrip stretch over sampled pairs, and table
sizes in entries and bits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exceptions import RoutingError
from repro.graph.shortest_paths import DistanceOracle
from repro.runtime.scheme import RoutingScheme
from repro.runtime.simulator import Simulator


@dataclass
class StretchReport:
    """Roundtrip-stretch statistics over a set of pairs.

    Attributes:
        pairs: number of (source, destination) pairs measured.
        max_stretch: worst observed roundtrip stretch.
        mean_stretch: average roundtrip stretch.
        max_header_bits: largest header seen in any journey.
        worst_pair: the (source_vertex, dest_vertex) achieving
            ``max_stretch``.
    """

    pairs: int
    max_stretch: float
    mean_stretch: float
    max_header_bits: int
    worst_pair: Tuple[int, int]


def measure_stretch(
    scheme: RoutingScheme,
    oracle: DistanceOracle,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> StretchReport:
    """Route every given pair and report roundtrip stretch statistics.

    Args:
        scheme: scheme under test (already constructed).
        oracle: distances of the same graph (ground truth).
        pairs: explicit (source_vertex, dest_vertex) pairs; defaults to
            all ordered pairs, optionally subsampled.
        sample: when given and ``pairs`` is None, draw this many random
            ordered pairs instead of the full quadratic set.
        rng: randomness for sampling.

    Raises:
        RoutingError: propagated from the simulator on any failure —
            measurement never hides a delivery bug.
    """
    n = oracle.n
    if pairs is None:
        all_pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
        if sample is not None and sample < len(all_pairs):
            rng = rng or random.Random(0)
            pairs = rng.sample(all_pairs, sample)
        else:
            pairs = all_pairs
    sim = Simulator(scheme)
    worst = 0.0
    worst_pair = (-1, -1)
    total = 0.0
    max_bits = 0
    for (s, t) in pairs:
        if s == t:
            raise RoutingError("stretch undefined for s == t")
        trace = sim.roundtrip(s, scheme.name_of(t))
        stretch = trace.total_cost / oracle.r(s, t)
        total += stretch
        max_bits = max(max_bits, trace.max_header_bits)
        if stretch > worst:
            worst, worst_pair = stretch, (s, t)
    return StretchReport(
        pairs=len(pairs),
        max_stretch=worst,
        mean_stretch=total / len(pairs),
        max_header_bits=max_bits,
        worst_pair=worst_pair,
    )


@dataclass
class TableReport:
    """Table-size statistics for one scheme instance.

    Attributes:
        max_entries: largest per-node table (rows).
        mean_entries: average per-node table (rows).
        total_entries: sum of all rows.
        max_bits: largest per-node table in estimated bits.
    """

    max_entries: int
    mean_entries: float
    total_entries: int
    max_bits: int


def measure_tables(scheme: RoutingScheme) -> TableReport:
    """Summarize per-node table sizes of a constructed scheme."""
    sizes = [scheme.table_entries(v) for v in scheme.graph.vertices()]
    bits = [scheme.table_bits(v) for v in scheme.graph.vertices()]
    return TableReport(
        max_entries=max(sizes),
        mean_entries=sum(sizes) / len(sizes),
        total_entries=sum(sizes),
        max_bits=max(bits),
    )
