"""A concrete wire format for packet headers (Section 1.1.4).

The sizing module *estimates* header bits; this codec *produces* them:
headers are encoded to an actual bitstring and decoded back, so the
``O(log^2 n)`` claims are validated against a real encoding rather
than an accounting convention.  The simulator does not use the codec
on the hot path (headers stay dicts for debuggability); tests and the
header benchmarks round-trip live headers through it.

Format: a sequence of tagged fields.  Each field is

* a field-name tag (5 bits, from a fixed registry of the field names
  the schemes use),
* a type tag (3 bits),
* a type-dependent payload; identifiers are fixed-width
  ``ceil(log2 n)`` bits; strings (mode constants) are 4-bit length
  plus 7-bit ASCII; lists carry a length then elements; the three
  label dataclasses have dedicated compound encodings.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ReproError
from repro.runtime.scheme import Header
from repro.runtime.sizing import id_bits
from repro.rtz.routing import R3Label
from repro.rtz.spanner import R2Label
from repro.tree_routing.fixed_port import TreeAddress


class CodecError(ReproError):
    """Raised on malformed encodings or unregistered fields."""


#: every header field name the schemes use, in a fixed registry order
FIELD_REGISTRY: List[str] = [
    "mode",
    "dest",
    "src_label",
    "next_label",
    "dict_node",
    "leg",
    "label",
    "src_id",
    "hop",
    "stack",
    "next_id",
    "phase",
    "src_addr",
    "level",
    "tree_id",
    "returning",
    "next_addr",
    "src",
    "fetched",
]
_FIELD_INDEX = {name: i for i, name in enumerate(FIELD_REGISTRY)}
_FIELD_BITS = 5

# type tags
_T_NONE, _T_BOOL, _T_INT, _T_STR, _T_LIST, _T_R3, _T_R2, _T_ADDR = range(8)
_TYPE_BITS = 3


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        """Write ``value`` as ``width`` bits, MSB first."""
        if value < 0 or value >= (1 << width):
            raise CodecError(f"value {value} does not fit in {width} bits")
        for i in reversed(range(width)):
            self._bits.append((value >> i) & 1)

    def __len__(self) -> int:
        return len(self._bits)

    def getvalue(self) -> List[int]:
        """The raw bit list."""
        return list(self._bits)


class BitReader:
    """Sequential bit reader."""

    def __init__(self, bits: List[int]):
        self._bits = bits
        self._pos = 0

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if self._pos + width > len(self._bits):
            raise CodecError("truncated encoding")
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    @property
    def remaining(self) -> int:
        """Unread bit count."""
        return len(self._bits) - self._pos


class HeaderCodec:
    """Encode/decode headers for an ``n``-node network.

    Args:
        n: network size; identifiers use ``ceil(log2 n)`` bits.
        id_universe: width override for identifier fields that exceed
            the name space (e.g. wild names); defaults to ``n``.
    """

    def __init__(self, n: int, id_universe: int = 0):
        self._n = n
        self._idw = id_bits(max(n, id_universe))
        # tree ids span levels * stride; give them a wide fixed field
        self._treew = max(self._idw, 26)

    # ------------------------------------------------------------------
    def encode(self, header: Header) -> List[int]:
        """Encode a header dict to bits.

        Raises:
            CodecError: on unregistered fields or unencodable values.
        """
        w = BitWriter()
        w.write(len(header), 6)
        for key in sorted(header, key=lambda k: _FIELD_INDEX.get(k, 99)):
            if key not in _FIELD_INDEX:
                raise CodecError(f"unregistered header field {key!r}")
            w.write(_FIELD_INDEX[key], _FIELD_BITS)
            self._encode_value(w, header[key])
        return w.getvalue()

    def decode(self, bits: List[int]) -> Header:
        """Decode bits back to a header dict."""
        r = BitReader(bits)
        count = r.read(6)
        out: Header = {}
        for _ in range(count):
            field = FIELD_REGISTRY[r.read(_FIELD_BITS)]
            out[field] = self._decode_value(r)
        return out

    # ------------------------------------------------------------------
    def _encode_value(self, w: BitWriter, value: object) -> None:
        if value is None:
            w.write(_T_NONE, _TYPE_BITS)
        elif isinstance(value, bool):
            w.write(_T_BOOL, _TYPE_BITS)
            w.write(int(value), 1)
        elif isinstance(value, int):
            w.write(_T_INT, _TYPE_BITS)
            # width escape: 0 = identifier, 1 = tree-id width, 2 = 64b
            if 0 <= value < (1 << self._idw):
                w.write(0, 2)
                w.write(value, self._idw)
            elif 0 <= value < (1 << self._treew):
                w.write(1, 2)
                w.write(value, self._treew)
            else:
                w.write(2, 2)
                w.write(value, 64)
        elif isinstance(value, str):
            w.write(_T_STR, _TYPE_BITS)
            if len(value) >= 16:
                raise CodecError("mode strings must be short")
            w.write(len(value), 4)
            for ch in value:
                code = ord(ch)
                if code >= 128:
                    raise CodecError("mode strings must be ASCII")
                w.write(code, 7)
        elif isinstance(value, (list, tuple)):
            w.write(_T_LIST, _TYPE_BITS)
            w.write(len(value), self._idw)
            for item in value:
                self._encode_value(w, item)
        elif isinstance(value, R3Label):
            w.write(_T_R3, _TYPE_BITS)
            w.write(value.dest, self._idw)
            w.write(value.center, self._idw)
            self._write_addr(w, value.addr)
        elif isinstance(value, R2Label):
            w.write(_T_R2, _TYPE_BITS)
            self._write_addr(w, value.addr_from)
            self._write_addr(w, value.addr_to)
        elif isinstance(value, TreeAddress):
            w.write(_T_ADDR, _TYPE_BITS)
            self._write_addr(w, value)
        else:
            raise CodecError(
                f"no encoding for {type(value).__name__}"
            )

    def _write_addr(self, w: BitWriter, addr: TreeAddress) -> None:
        w.write(addr.tree_id, self._treew)
        w.write(addr.dfs, self._idw)

    def _read_addr(self, r: BitReader) -> TreeAddress:
        return TreeAddress(r.read(self._treew), r.read(self._idw))

    def _decode_value(self, r: BitReader) -> object:
        tag = r.read(_TYPE_BITS)
        if tag == _T_NONE:
            return None
        if tag == _T_BOOL:
            return bool(r.read(1))
        if tag == _T_INT:
            escape = r.read(2)
            widths = {0: self._idw, 1: self._treew, 2: 64}
            return r.read(widths[escape])
        if tag == _T_STR:
            length = r.read(4)
            return "".join(chr(r.read(7)) for _ in range(length))
        if tag == _T_LIST:
            length = r.read(self._idw)
            return [self._decode_value(r) for _ in range(length)]
        if tag == _T_R3:
            dest = r.read(self._idw)
            center = r.read(self._idw)
            return R3Label(dest, center, self._read_addr(r))
        if tag == _T_R2:
            addr_from = self._read_addr(r)
            addr_to = self._read_addr(r)
            return R2Label(addr_to.tree_id, addr_from, addr_to)
        if tag == _T_ADDR:
            return self._read_addr(r)
        raise CodecError(f"unknown type tag {tag}")

    # ------------------------------------------------------------------
    def encoded_bits(self, header: Header) -> int:
        """Length of the real encoding in bits."""
        return len(self.encode(header))
