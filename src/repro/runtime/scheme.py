"""The routing-scheme interface (Section 1.1.1).

A roundtrip routing scheme must specify (1) per-node tables, (2) a
forwarding function ``F(table(x), header(P))`` returning the outgoing
port and the new header.  :class:`RoutingScheme` captures exactly that
contract; the simulator in :mod:`repro.runtime.simulator` executes it
hop by hop, giving schemes no access to anything but the current
vertex's table and the packet header.

Headers are plain dicts of named fields (sized by
:mod:`repro.runtime.sizing`).  Two fields are universal, following the
paper's pseudocode (Figs. 3, 6, 11):

* ``"mode"`` — ``NEW_PACKET`` when first injected at the source,
  ``RETURN_PACKET`` set by the *destination host* when it emits the
  acknowledgment; schemes rewrite it to their internal modes
  (Outbound/Inbound/Enroute/...).
* ``"dest"`` — the topology-independent destination *name*; the only
  topological hint a fresh packet carries is nothing at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Union

from repro.graph.digraph import Digraph

#: header mode constants shared across schemes
NEW_PACKET = "new"
RETURN_PACKET = "ret"

Header = Dict[str, object]


@dataclass(frozen=True)
class Forward:
    """Forwarding decision: send on ``port`` with ``header``."""

    port: int
    header: Header


@dataclass(frozen=True)
class Deliver:
    """Forwarding decision: hand the packet to the local host."""

    header: Header


Decision = Union[Forward, Deliver]


class RoutingScheme(abc.ABC):
    """A compact roundtrip routing scheme over a fixed graph + naming.

    Subclasses build all tables in ``__init__`` (centralized
    preprocessing, as the paper allows) and expose the local forwarding
    function plus table-size accounting.
    """

    #: short scheme identifier used in experiment tables
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def graph(self) -> Digraph:
        """The underlying digraph."""

    @abc.abstractmethod
    def name_of(self, vertex: int) -> int:
        """The adversarial name of ``vertex`` (naming is part of the
        instance a scheme is built for)."""

    @abc.abstractmethod
    def vertex_of(self, name: int) -> int:
        """Inverse of :meth:`name_of` (preprocessing-time only)."""

    def new_packet_header(self, dest_name: int) -> Header:
        """The header a fresh packet arrives with: destination name
        only (TINN model)."""
        return {"mode": NEW_PACKET, "dest": dest_name}

    def make_return_header(self, header: Header) -> Header:
        """Header of the acknowledgment the destination host emits.

        Per the paper: "When a reply packet is sent, Mode is set to
        ReturnPacket before the routing algorithm receives it"; learned
        topological information stays in the header.
        """
        out = dict(header)
        out["mode"] = RETURN_PACKET
        return out

    @abc.abstractmethod
    def forward(self, at: int, header: Header) -> Decision:
        """The local forwarding function ``F(table(at), header)``.

        Args:
            at: the vertex currently holding the packet.
            header: the packet header (never mutated; return a new one).

        Returns:
            :class:`Forward` or :class:`Deliver`.
        """

    # ------------------------------------------------------------------
    # compiled execution (the batched fast path)
    # ------------------------------------------------------------------
    def compile_tables(self, tables: str = "dense"):
        """Compile this scheme's forwarding function into vectorized
        decision tables of the given (already-resolved) family
        (``"dense"`` or ``"blocked"``).

        Returns a :class:`repro.runtime.engine.CompiledRoutes` when the
        scheme's headers are segment-wise structurally constant (see
        :mod:`repro.runtime.engine`), or ``None`` — the default — when
        they are not; the simulator then transparently falls back to
        hop-by-hop Python execution.
        """
        return None

    def compiled_routes(self, tables: str = "auto"):
        """Cached :meth:`compile_tables` result for the requested table
        family (compiled at most once per scheme instance per family;
        ``None`` means "not compilable").  ``tables="auto"`` resolves
        by graph size via
        :func:`repro.runtime.engine.resolve_table_family`.
        """
        import inspect

        from repro.runtime.engine import resolve_table_family

        family = resolve_table_family(tables, self.graph.n)
        cache = getattr(self, "_compiled_routes", None)
        if cache is None:
            cache = self._compiled_routes = {}
        if family not in cache:
            try:
                accepts_family = (
                    "tables" in inspect.signature(self.compile_tables).parameters
                )
            except (TypeError, ValueError):  # pragma: no cover - C callables
                accepts_family = False
            if accepts_family:
                cache[family] = self.compile_tables(tables=family)
            elif family == "dense":
                # Pre-family compile_tables() overrides only know how to
                # build dense tables.
                cache[family] = self.compile_tables()
            else:
                cache[family] = None
        return cache[family]

    def __getstate__(self):
        """Pickle the scheme *without* its compiled-routes cache.

        :class:`~repro.runtime.engine.CompiledRoutes` holds dense
        ``(n, n)`` decision tables and planner closures — heavy on the
        wire and unpicklable.  Dropping the cache keeps schemes
        pickle-cheap for process-pool shard execution
        (:func:`repro.runtime.traffic.run_workload`): each worker
        rehydrates the tables from its own CSR snapshot on the first
        :meth:`compiled_routes` call.
        """
        state = dict(self.__dict__)
        state.pop("_compiled_routes", None)
        return state

    # ------------------------------------------------------------------
    # table accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def table_entries(self, vertex: int) -> int:
        """Number of stored table rows at ``vertex`` (identifier-sized
        fields are counted by :meth:`table_bits`)."""

    def table_bits(self, vertex: int) -> int:
        """Approximate bit size of the local table; default charges two
        identifier fields per entry."""
        from repro.runtime.sizing import entries_to_bits

        return entries_to_bits(self.table_entries(vertex), self.graph.n)

    def max_table_entries(self) -> int:
        """Max table rows over all vertices."""
        return max(self.table_entries(v) for v in self.graph.vertices())

    def mean_table_entries(self) -> float:
        """Mean table rows over all vertices."""
        total = sum(self.table_entries(v) for v in self.graph.vertices())
        return total / self.graph.n
