"""The universal-hashing name reduction (Section 1.1.2 and [4]).

The TINN schemes assume names are a permutation of ``{0..n-1}``.  The
paper notes (citing [4]) that nodes choosing their own names from a
large space can be supported: pick a universal hash function ``h``
mapping the wild names to ``{0..n-1}``; collisions are rare, and each
dictionary slot simply stores the (short) list of wild names hashing to
it, blowing tables up by only a constant factor.  Crucially the hash
family is chosen *after* the adversary fixes the names (footnote 5).

This module implements:

* :class:`CarterWegmanHash` — the classic ``((a*x + b) mod p) mod n``
  universal family;
* :class:`HashedNaming` — the end-to-end reduction: wild names ->
  slots in ``{0..n-1}``, exposing per-slot buckets, the maximum bucket
  size (the table blow-up factor), and collision statistics.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.exceptions import NamingError


def _is_probable_prime(x: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers."""
    if x < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if x % p == 0:
            return x == p
    d = x - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        v = pow(a, d, x)
        if v in (1, x - 1):
            continue
        for _ in range(s - 1):
            v = v * v % x
            if v == x - 1:
                break
        else:
            return False
    return True


def next_prime(x: int) -> int:
    """Smallest prime ``>= x``."""
    if x <= 2:
        return 2
    candidate = x | 1
    while not _is_probable_prime(candidate):
        candidate += 2
    return candidate


class CarterWegmanHash:
    """Universal hash ``x -> ((a*x + b) mod p) mod n``.

    Args:
        universe_bound: exclusive upper bound on hashed keys.
        n: output range size.
        rng: randomness for drawing ``a`` (nonzero) and ``b``.
    """

    def __init__(self, universe_bound: int, n: int, rng: Optional[random.Random] = None):
        if universe_bound < 1 or n < 1:
            raise NamingError("universe_bound and n must be positive")
        rng = rng or random.Random(0)
        self._p = next_prime(max(universe_bound, n + 1))
        self._a = rng.randrange(1, self._p)
        self._b = rng.randrange(0, self._p)
        self._n = n

    @property
    def p(self) -> int:
        """The prime modulus."""
        return self._p

    def __call__(self, x: int) -> int:
        if not (0 <= x < self._p):
            raise NamingError(f"key {x} outside hash universe [0, {self._p})")
        return ((self._a * x + self._b) % self._p) % self._n


class HashedNaming:
    """Reduction from arbitrary unique "wild" names to slots ``[n]``.

    Args:
        wild_names: the adversary-chosen unique node names (one per
            vertex, ``wild_names[vertex]``), drawn from a large space.
        universe_bound: exclusive upper bound on wild-name values.
        rng: used to draw the hash function *after* names are fixed.
        max_expected_load: retry drawing the hash function until the
            max bucket size is at most this (constant) bound; mirrors
            the paper's "small numbers of collisions" requirement.

    Raises:
        NamingError: on duplicate wild names, or if no hash function
            with acceptable load is found in a reasonable number of
            draws (which for a universal family is astronomically
            unlikely at the default bound).
    """

    #: draws before giving up
    _MAX_DRAWS = 64

    def __init__(
        self,
        wild_names: Sequence[int],
        universe_bound: int,
        rng: Optional[random.Random] = None,
        max_expected_load: int = 8,
    ):
        rng = rng or random.Random(0)
        n = len(wild_names)
        if len(set(wild_names)) != n:
            raise NamingError("wild names must be unique")
        for w in wild_names:
            if not (0 <= w < universe_bound):
                raise NamingError(
                    f"wild name {w} outside universe [0, {universe_bound})"
                )
        self._wild: List[int] = list(wild_names)
        self._n = n
        attempt = 0
        while True:
            attempt += 1
            h = CarterWegmanHash(universe_bound, n, rng)
            buckets: Dict[int, List[int]] = {}
            for vertex, w in enumerate(self._wild):
                buckets.setdefault(h(w), []).append(vertex)
            load = max(len(b) for b in buckets.values())
            if load <= max_expected_load:
                break
            if attempt >= self._MAX_DRAWS:
                raise NamingError(
                    f"could not find hash with load <= {max_expected_load} "
                    f"after {self._MAX_DRAWS} draws (last load {load})"
                )
        self._hash = h
        self._buckets = buckets

    @property
    def n(self) -> int:
        """Number of nodes (= output range size)."""
        return self._n

    def slot_of_wild(self, wild_name: int) -> int:
        """The slot in ``{0..n-1}`` a wild name hashes to."""
        return self._hash(wild_name)

    def slot_of_vertex(self, vertex: int) -> int:
        """The slot of the vertex's own wild name."""
        return self._hash(self._wild[vertex])

    def wild_of_vertex(self, vertex: int) -> int:
        """The vertex's wild name."""
        return self._wild[vertex]

    def bucket(self, slot: int) -> List[int]:
        """Vertices whose wild names hash to ``slot`` (may be empty)."""
        return list(self._buckets.get(slot, []))

    def resolve(self, wild_name: int) -> int:
        """Find the vertex carrying ``wild_name``.

        This is what a dictionary node does: hash, then scan the short
        bucket.  Raises :class:`NamingError` if no vertex has the name.
        """
        for vertex in self._buckets.get(self._hash(wild_name), []):
            if self._wild[vertex] == wild_name:
                return vertex
        raise NamingError(f"no vertex has wild name {wild_name}")

    # ------------------------------------------------------------------
    # statistics for the E10 experiment
    # ------------------------------------------------------------------
    def max_load(self) -> int:
        """Largest bucket size — the table blow-up factor."""
        return max(len(b) for b in self._buckets.values())

    def collision_count(self) -> int:
        """Number of name pairs sharing a slot."""
        return sum(
            len(b) * (len(b) - 1) // 2 for b in self._buckets.values()
        )

    def occupied_slots(self) -> int:
        """Number of distinct slots in use."""
        return len(self._buckets)


def random_wild_names(
    n: int, universe_bound: int, rng: Optional[random.Random] = None
) -> List[int]:
    """Draw ``n`` distinct wild names uniformly from the universe.

    Uses rejection sampling for universes too large for
    ``random.sample`` (e.g. ``2**64``).
    """
    rng = rng or random.Random(0)
    if universe_bound < n:
        raise NamingError("universe must be at least as large as n")
    if universe_bound <= 1 << 24:
        return rng.sample(range(universe_bound), n)
    seen: set[int] = set()
    while len(seen) < n:
        seen.add(rng.randrange(universe_bound))
    return sorted(seen)
