"""Naming substrate: adversarial permutation names, the universal-hash
reduction for wild names, and the block/prefix address-space structure
(systems S6-S8 of DESIGN.md)."""

from repro.naming.blocks import BlockSpace, block_count_bound, sqrt_block_space
from repro.naming.hashing import (
    CarterWegmanHash,
    HashedNaming,
    next_prime,
    random_wild_names,
)
from repro.naming.permutation import (
    Naming,
    identity_naming,
    random_naming,
    worst_case_namings,
)

__all__ = [
    "Naming",
    "identity_naming",
    "random_naming",
    "worst_case_namings",
    "BlockSpace",
    "sqrt_block_space",
    "block_count_bound",
    "CarterWegmanHash",
    "HashedNaming",
    "next_prime",
    "random_wild_names",
]
