"""Address-space blocks and base-``n^{1/k}`` prefix arithmetic.

Section 2 splits the name space ``{0..n-1}`` into ``sqrt(n)``-sized
blocks ``B_i``.  Section 3.1 generalizes: names are written in base
``q = ceil(n^{1/k})`` as length-``k`` strings over the alphabet
``Sigma = {0..q-1}``; a *block* ``B_alpha`` is the set of names sharing
a length-``(k-1)`` prefix ``alpha``; ``sigma^i`` extracts length-``i``
prefixes.

The paper assumes ``n`` is a perfect ``k``-th power "for simplicity".
We drop that assumption: :class:`BlockSpace` uses ``q = ceil(n^{1/k})``
and simply allows the top block(s) to be partially filled, which
changes no bound by more than a constant factor.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.exceptions import NamingError


class BlockSpace:
    """Base-``q`` block/prefix structure over the name space ``[n]``.

    Args:
        n: name-space size.
        k: number of digits (levels); ``k = 2`` reproduces Section 2's
            ``sqrt(n)`` blocks.

    Attributes:
        q: the alphabet size ``ceil(n^{1/k})``.
    """

    def __init__(self, n: int, k: int):
        if n <= 0:
            raise NamingError(f"n must be positive, got {n}")
        if k < 1:
            raise NamingError(f"k must be >= 1, got {k}")
        self._n = n
        self._k = k
        # Smallest q with q**k >= n (ceil of the k-th root, computed
        # robustly against float error).
        q = max(1, int(round(n ** (1.0 / k))))
        while q ** k < n:
            q += 1
        while q > 1 and (q - 1) ** k >= n:
            q -= 1
        self._q = q

    @property
    def n(self) -> int:
        """Name-space size."""
        return self._n

    @property
    def k(self) -> int:
        """Digit count."""
        return self._k

    @property
    def q(self) -> int:
        """Alphabet size ``|Sigma|``."""
        return self._q

    # ------------------------------------------------------------------
    # digits and prefixes
    # ------------------------------------------------------------------
    def digits(self, name: int) -> Tuple[int, ...]:
        """``<u>``: the base-``q`` digits of ``name``, most significant
        first, zero-padded to length ``k``."""
        self._check_name(name)
        out = []
        x = name
        for _ in range(self._k):
            out.append(x % self._q)
            x //= self._q
        return tuple(reversed(out))

    def from_digits(self, digits: Tuple[int, ...]) -> int:
        """Inverse of :meth:`digits` (may exceed ``n-1`` for padded
        spaces; the caller checks with :meth:`is_name`)."""
        if len(digits) != self._k:
            raise NamingError(f"need exactly k={self._k} digits, got {len(digits)}")
        x = 0
        for d in digits:
            if not (0 <= d < self._q):
                raise NamingError(f"digit {d} out of range [0, {self._q})")
            x = x * self._q + d
        return x

    def is_name(self, value: int) -> bool:
        """Whether ``value`` is a valid name (``< n``)."""
        return 0 <= value < self._n

    def prefix(self, name: int, i: int) -> Tuple[int, ...]:
        """``sigma^i(<name>)``: the first ``i`` digits."""
        if not (0 <= i <= self._k):
            raise NamingError(f"prefix length {i} out of range [0, {self._k}]")
        return self.digits(name)[:i]

    def shares_prefix(self, a: int, b: int, i: int) -> bool:
        """Whether names ``a`` and ``b`` agree on their first ``i``
        digits."""
        return self.prefix(a, i) == self.prefix(b, i)

    def match_length(self, a: int, b: int) -> int:
        """The longest common digit-prefix length of names ``a``, ``b``."""
        da, db = self.digits(a), self.digits(b)
        h = 0
        while h < self._k and da[h] == db[h]:
            h += 1
        return h

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------
    def num_blocks(self) -> int:
        """Number of non-empty blocks (length-``(k-1)`` prefixes that
        contain at least one valid name)."""
        if self._k == 1:
            return 1
        # Block alpha covers names [alpha*q, (alpha+1)*q); count those
        # intersecting [0, n).
        return (self._n + self._q - 1) // self._q

    def block_of(self, name: int) -> int:
        """The block index (the length-``(k-1)`` prefix, packed as an
        integer) containing ``name``."""
        self._check_name(name)
        if self._k == 1:
            return 0
        return name // self._q

    def block_prefix(self, block: int) -> Tuple[int, ...]:
        """The length-``(k-1)`` digit string of ``block``."""
        self._check_block(block)
        out = []
        x = block
        for _ in range(self._k - 1):
            out.append(x % self._q)
            x //= self._q
        return tuple(reversed(out))

    def block_members(self, block: int) -> List[int]:
        """All valid names in ``B_block`` (at most ``q``)."""
        self._check_block(block)
        if self._k == 1:
            return list(range(self._n))
        lo = block * self._q
        hi = min(lo + self._q, self._n)
        return list(range(lo, hi))

    def block_has_prefix(self, block: int, tau: Tuple[int, ...]) -> bool:
        """``sigma^i(B_block) == tau`` where ``i = len(tau)``
        (the paper's slight abuse of notation for block prefixes)."""
        i = len(tau)
        if not (0 <= i <= self._k - 1):
            raise NamingError(
                f"block prefixes have length <= k-1={self._k - 1}, got {i}"
            )
        return self.block_prefix(block)[:i] == tuple(tau)

    def blocks_with_prefix(self, tau: Tuple[int, ...]) -> List[int]:
        """All non-empty blocks whose prefix extends ``tau``."""
        return [
            b for b in range(self.num_blocks()) if self.block_has_prefix(b, tau)
        ]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_name(self, name: int) -> None:
        if not self.is_name(name):
            raise NamingError(f"name {name} out of range [0, {self._n})")

    def _check_block(self, block: int) -> None:
        if not (0 <= block < self.num_blocks()):
            raise NamingError(
                f"block {block} out of range [0, {self.num_blocks()})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockSpace(n={self._n}, k={self._k}, q={self._q})"


def sqrt_block_space(n: int) -> BlockSpace:
    """Section 2's block structure: ``k = 2``, i.e. ``~sqrt(n)`` blocks
    of ``~sqrt(n)`` names each."""
    return BlockSpace(n, 2)


def block_count_bound(n: int, k: int) -> int:
    """Upper bound ``ceil(n^{(k-1)/k})`` on the number of blocks, used
    by size assertions in tests and benchmarks."""
    return int(math.ceil(n ** ((k - 1) / k))) + 1
