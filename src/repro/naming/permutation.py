"""Topology-independent node naming (Section 1.1.2).

In the TINN model, node names are an *arbitrary permutation* of
``{0, ..., n-1}`` chosen by an adversary.  :class:`Naming` is the
bijection between internal vertex ids (topology) and names (what
packets carry).  All scheme tables key on names; all topology access
goes through vertex ids.  Using a random permutation in tests verifies
that no scheme smuggles topological information through the names.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.exceptions import NamingError


class Naming:
    """A bijection vertex id <-> node name over ``{0..n-1}``.

    Args:
        names: ``names[vertex]`` is the vertex's adversarial name.  Must
            be a permutation of ``0..n-1``.

    Example:
        >>> nm = Naming([2, 0, 1])
        >>> nm.name_of(0)
        2
        >>> nm.vertex_of(2)
        0
    """

    def __init__(self, names: Sequence[int]):
        n = len(names)
        if sorted(names) != list(range(n)):
            raise NamingError(
                f"names must be a permutation of 0..{n - 1}, got {list(names)[:8]}..."
            )
        self._names: List[int] = list(names)
        self._vertex: List[int] = [0] * n
        for vertex, name in enumerate(self._names):
            self._vertex[name] = vertex

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._names)

    def name_of(self, vertex: int) -> int:
        """The adversarial name of ``vertex``."""
        self._check(vertex)
        return self._names[vertex]

    def vertex_of(self, name: int) -> int:
        """The vertex carrying ``name``."""
        self._check(name)
        return self._vertex[name]

    def all_names(self) -> List[int]:
        """``names[vertex]`` list (a copy)."""
        return list(self._names)

    def _check(self, x: int) -> None:
        if not (0 <= x < len(self._names)):
            raise NamingError(f"value {x} out of range [0, {len(self._names)})")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Naming) and self._names == other._names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Naming(n={self.n})"


def identity_naming(n: int) -> Naming:
    """The identity permutation (names equal vertex ids)."""
    return Naming(list(range(n)))


def random_naming(n: int, rng: Optional[random.Random] = None) -> Naming:
    """A uniformly random adversarial naming."""
    rng = rng or random.Random(0)
    names = list(range(n))
    rng.shuffle(names)
    return Naming(names)


def worst_case_namings(n: int, count: int, rng: random.Random) -> List[Naming]:
    """A batch of distinct random namings for adversarial testing."""
    seen = set()
    result: List[Naming] = []
    while len(result) < count:
        names = tuple(rng.sample(range(n), n))
        if names in seen:
            continue
        seen.add(names)
        result.append(Naming(list(names)))
    return result
